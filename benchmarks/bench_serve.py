"""Benchmark: the fault-tolerant reasoning service, fault-off vs fault-on.

One request stream (a CPS/DCIP/COP/CPP/ECP mix across four logical sessions)
is driven through :class:`~repro.serve.ReasoningService` twice:

* **fault-off** — no injected faults; measures the service's baseline
  throughput and latency distribution (p50/p99 per request, including lane
  queueing).
* **fault-on** — a sustained chaos plan (periodic worker kills, stalls and
  transient errors via :mod:`repro.testing.faults`); measures how much
  throughput survives and that the tail latency stays *bounded* while workers
  are being killed and respawned under load.

Answer values are checked against a warm serial session before any timing is
reported; under faults, every non-ok answer must carry a structured failure
or an explicit degraded label — the bench fails on a silently wrong value.

Standalone script (not collected by pytest):

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke] \
        [--output BENCH_serve.json]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve import ReasoningService
from repro.session import ProblemRequest, ReasoningSession
from repro.session.batch import _answer
from repro.testing.faults import Fault, FaultPlan
from repro.workloads import company
from repro.workloads.synthetic import (
    SyntheticConfig,
    preservation_workload,
    random_specification,
)

ORDER = {"salary": [("s1", "s3")]}

#: sustained chaos for the fault-on section: a stall every 4th request, a
#: worker crash every 9th, a transient error every 7th — per worker process,
#: with fresh counters in every respawned incarnation
CHAOS = FaultPlan.of(
    Fault("worker.execute", "sleep", seconds=0.01, every=4),
    Fault("worker.execute", "kill", every=9),
    Fault("worker.request", "raise", every=7),
)


def _workload(rounds):
    """``rounds`` rounds of a five-problem mix across four logical specs."""
    spec_a = company.company_specification()
    spec_b, query_b = preservation_workload(
        candidates=2, conflict_groups=1, spoiler=True, seed=2
    )
    spec_c = random_specification(SyntheticConfig(seed=5, with_constraints=False))
    spec_d = random_specification(SyntheticConfig(seed=9, with_constraints=False))
    round_mix = [
        (spec_a, ProblemRequest("cps")),
        (spec_a, ProblemRequest("cop", args=("Emp", ORDER))),
        (spec_b, ProblemRequest("cpp", query=query_b)),
        (spec_b, ProblemRequest("ecp", query=query_b)),
        (spec_c, ProblemRequest("cps")),
        (spec_c, ProblemRequest("dcip")),
        (spec_d, ProblemRequest("cps")),
        (spec_d, ProblemRequest("dcip")),
    ]
    return round_mix * rounds


def _oracle_values(pairs):
    """Fault-free expected values from warm serial sessions (interned by
    specification identity — the stream reuses four spec objects)."""
    sessions = {}
    expected = []
    for specification, request in pairs:
        session = sessions.get(id(specification))
        if session is None:
            session = ReasoningSession(specification)
            sessions[id(specification)] = session
        expected.append(_answer(session, request))
    return expected


async def _drive(service, pairs, deadline):
    latencies = [0.0] * len(pairs)

    async def one(index, specification, item):
        started = time.perf_counter()
        answer = await service.submit(specification, item, deadline=deadline)
        latencies[index] = time.perf_counter() - started
        return answer

    answers = await asyncio.gather(
        *[one(i, s, item) for i, (s, item) in enumerate(pairs)]
    )
    return answers, latencies


def _percentile(values, fraction):
    ordered = sorted(values)
    position = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[position]


def _run_section(pairs, expected, fault_plan, deadline):
    async def scenario():
        async with ReasoningService(
            processes=2, retries=2, queue_limit=len(pairs), fault_plan=fault_plan
        ) as service:
            started = time.perf_counter()
            answers, latencies = await _drive(service, pairs, deadline)
            elapsed = time.perf_counter() - started
            return answers, latencies, elapsed, service.stats()

    answers, latencies, elapsed, stats = asyncio.run(scenario())
    ok = degraded = failed = silently_wrong = 0
    for answer, truth in zip(answers, expected):
        if answer.ok:
            ok += 1
            if answer.value != truth:
                silently_wrong += 1
        elif answer.degraded is not None:
            degraded += 1
        else:
            failed += 1
            assert answer.failure is not None  # failures are always structured
    return {
        "requests": len(pairs),
        "ok": ok,
        "degraded": degraded,
        "failed": failed,
        "silently_wrong": silently_wrong,
        "total_s": round(elapsed, 6),
        "throughput_rps": round(len(pairs) / elapsed, 2),
        "p50_s": round(_percentile(latencies, 0.50), 6),
        "p99_s": round(_percentile(latencies, 0.99), 6),
        "respawns": stats["supervisor"]["respawns"],
    }


def run(smoke: bool, output: str) -> dict:
    rounds = 3 if smoke else 10
    pairs = _workload(rounds)
    expected = _oracle_values(pairs)
    deadline = 30.0  # generous per-request deadline; hangs are bench bugs

    fault_off = _run_section(pairs, expected, None, deadline)
    print(
        f"[bench_serve] fault-off: {fault_off['requests']} requests in "
        f"{fault_off['total_s']:.3f}s ({fault_off['throughput_rps']} req/s, "
        f"p50 {fault_off['p50_s'] * 1000:.1f}ms, p99 {fault_off['p99_s'] * 1000:.1f}ms)",
        flush=True,
    )
    assert fault_off["silently_wrong"] == 0
    assert fault_off["ok"] == fault_off["requests"]

    fault_on = _run_section(pairs, expected, CHAOS, deadline)
    print(
        f"[bench_serve] fault-on:  {fault_on['ok']} ok / "
        f"{fault_on['degraded']} degraded / {fault_on['failed']} failed in "
        f"{fault_on['total_s']:.3f}s ({fault_on['throughput_rps']} req/s, "
        f"p99 {fault_on['p99_s'] * 1000:.1f}ms, "
        f"{fault_on['respawns']} respawns)",
        flush=True,
    )
    assert fault_on["silently_wrong"] == 0

    report = {
        "benchmark": "serve",
        "smoke": smoke,
        "fault_off": fault_off,
        "fault_on": fault_on,
        "fault_off_total_s": fault_off["total_s"],
        "fault_off_p99_s": fault_off["p99_s"],
        "fault_on_total_s": fault_on["total_s"],
        "fault_on_p99_s": fault_on["p99_s"],
        "headline": {
            "fault_off_throughput_rps": fault_off["throughput_rps"],
            "fault_off_p99_s": fault_off["p99_s"],
            "fault_on_throughput_rps": fault_on["throughput_rps"],
            "fault_on_p99_s": fault_on["p99_s"],
        },
    }
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"[bench_serve] wrote {output}")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small sizes for CI")
    parser.add_argument("--output", default="BENCH_serve.json")
    args = parser.parse_args(argv)
    run(args.smoke, args.output)
    return 0


# the spawn context re-imports this module in every worker process, so the
# entry point MUST stay behind the main guard
if __name__ == "__main__":
    raise SystemExit(main())
