"""Driver: run every ``bench_*.py`` in smoke mode and emit ``BENCH_*.json``.

Benchmarks are opt-in — the tier-1 gate stays ``python -m pytest -x -q``
(which never collects ``bench_*.py``).  This driver runs:

* script-style benchmarks (those exposing a ``main()`` CLI, currently
  ``bench_query_evaluator.py``) with ``--smoke``;
* pytest-benchmark suites via ``pytest <file> --benchmark-json=BENCH_<name>.json``.

Usage:

    python benchmarks/run_all.py [--output-dir DIR] [--timeout SECONDS] \
        [--only SUBSTRING]

Each benchmark writes ``BENCH_<name>.json`` into ``--output-dir`` (default:
the repository root).  Failures and timeouts are reported but do not abort the
remaining benchmarks; the driver exits non-zero if any benchmark failed.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)

# benchmarks that are standalone scripts with their own --smoke / --output CLI
SCRIPT_BENCHMARKS = {"bench_query_evaluator.py"}


def discover() -> list:
    return sorted(
        name
        for name in os.listdir(BENCH_DIR)
        if name.startswith("bench_") and name.endswith(".py")
    )


def run_one(name: str, output_dir: str, timeout: float) -> dict:
    stem = name[len("bench_"):-len(".py")]
    output = os.path.join(output_dir, f"BENCH_{stem}.json")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if name in SCRIPT_BENCHMARKS:
        command = [sys.executable, os.path.join(BENCH_DIR, name), "--smoke",
                   "--output", output]
    else:
        command = [
            sys.executable, "-m", "pytest", os.path.join(BENCH_DIR, name),
            "-q", "--benchmark-disable-gc", f"--benchmark-json={output}",
        ]
    started = time.perf_counter()
    try:
        completed = subprocess.run(
            command, cwd=REPO_ROOT, env=env, timeout=timeout,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        status = "ok" if completed.returncode == 0 else "failed"
        detail = "" if status == "ok" else completed.stdout.decode(errors="replace")[-2000:]
    except subprocess.TimeoutExpired:
        status = "timeout"
        detail = f"exceeded {timeout:.0f}s"
    return {
        "benchmark": name,
        "status": status,
        "seconds": round(time.perf_counter() - started, 2),
        "output": output if status == "ok" else None,
        "detail": detail,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output-dir", default=REPO_ROOT,
                        help="directory for the BENCH_*.json files")
    parser.add_argument("--timeout", type=float, default=900.0,
                        help="per-benchmark timeout in seconds")
    parser.add_argument("--only", default=None,
                        help="run only benchmarks whose filename contains this substring")
    args = parser.parse_args(argv)

    os.makedirs(args.output_dir, exist_ok=True)
    names = discover()
    if args.only:
        names = [name for name in names if args.only in name]
    if not names:
        print("no benchmarks matched", file=sys.stderr)
        return 2

    results = []
    for name in names:
        print(f"[run_all] {name} ...", flush=True)
        result = run_one(name, args.output_dir, args.timeout)
        print(f"[run_all] {name}: {result['status']} ({result['seconds']}s)", flush=True)
        if result["detail"]:
            print(result["detail"], flush=True)
        results.append(result)

    summary_path = os.path.join(args.output_dir, "BENCH_summary.json")
    with open(summary_path, "w") as handle:
        json.dump({"benchmarks": results}, handle, indent=2)
    failed = [r for r in results if r["status"] != "ok"]
    print(f"[run_all] {len(results) - len(failed)}/{len(results)} ok; summary: {summary_path}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
