"""Driver: run every ``bench_*.py`` in smoke mode and emit ``BENCH_*.json``.

Benchmarks are opt-in — the tier-1 gate stays ``python -m pytest -x -q``
(which never collects ``bench_*.py``).  This driver runs:

* script-style benchmarks (those exposing a ``main()`` CLI) with ``--smoke``;
* pytest-benchmark suites via ``pytest <file> --benchmark-json=BENCH_<name>.json``.

Usage:

    python benchmarks/run_all.py [--output-dir DIR] [--timeout SECONDS] \
        [--only SUBSTRING] [--compare] [--scale] [--profile]

``--scale`` forwards ``--scale`` to the benchmarks in ``SCALE_BENCHMARKS``
(the 10⁴-tuple tier with ``tracemalloc`` peak memory, which then flows into
``BENCH_history.json`` through the headline).  ``--profile`` runs each script
benchmark under ``cProfile`` and annotates its top-3 hot functions (by
cumulative time) into the produced JSON.

Each benchmark writes ``BENCH_<name>.json`` into ``--output-dir`` (default:
the repository root).  Failures and timeouts are reported but do not abort the
remaining benchmarks; the driver exits non-zero if any benchmark failed.

``--compare`` runs the benchmarks into a scratch directory instead, diffs the
freshly produced ``BENCH_*.json`` against the committed ones in the repository
root, and prints a per-benchmark regression table (ratio > 1 means the fresh
run is slower).  ``--tolerance`` overrides the flagging threshold and
``--fail-on-regression`` turns flagged metrics into a non-zero exit code — CI
runs ``--compare --fail-on-regression`` with a generous tolerance, so
order-of-magnitude regressions fail the build while machine-speed variance
between the committing host and the CI runner does not.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)

# benchmarks that are standalone scripts with their own --smoke / --output CLI
SCRIPT_BENCHMARKS = {
    "bench_query_evaluator.py",
    "bench_sat_solver.py",
    "bench_extensions.py",
    "bench_session.py",
    "bench_serve.py",
    "bench_streaming.py",
}

# script benchmarks that understand --scale (the 10^4-tuple tier with peak
# memory; kept behind a driver flag so CI smoke stays fast)
SCALE_BENCHMARKS = {
    "bench_streaming.py",
}

HISTORY_FILE = "BENCH_history.json"

# fresh-vs-committed ratio above which --compare flags a metric
REGRESSION_THRESHOLD = 1.25


def discover() -> list:
    return sorted(
        name
        for name in os.listdir(BENCH_DIR)
        if name.startswith("bench_") and name.endswith(".py")
    )


def run_one(
    name: str, output_dir: str, timeout: float,
    scale: bool = False, profile: bool = False,
) -> dict:
    stem = name[len("bench_"):-len(".py")]
    output = os.path.join(output_dir, f"BENCH_{stem}.json")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    profile_path = None
    if name in SCRIPT_BENCHMARKS:
        interpreter = [sys.executable]
        if profile:
            profile_path = os.path.join(output_dir, f"BENCH_{stem}.prof")
            interpreter = [sys.executable, "-m", "cProfile", "-o", profile_path]
        command = interpreter + [os.path.join(BENCH_DIR, name), "--smoke",
                                 "--output", output]
        if scale and name in SCALE_BENCHMARKS:
            command.append("--scale")
    else:
        command = [
            sys.executable, "-m", "pytest", os.path.join(BENCH_DIR, name),
            "-q", "--benchmark-disable-gc", f"--benchmark-json={output}",
        ]
    started = time.perf_counter()
    try:
        completed = subprocess.run(
            command, cwd=REPO_ROOT, env=env, timeout=timeout,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        status = "ok" if completed.returncode == 0 else "failed"
        detail = "" if status == "ok" else completed.stdout.decode(errors="replace")[-2000:]
    except subprocess.TimeoutExpired:
        status = "timeout"
        detail = f"exceeded {timeout:.0f}s"
    if status == "ok" and profile_path and os.path.exists(profile_path):
        annotate_profile(output, profile_path)
    return {
        "benchmark": name,
        "status": status,
        "seconds": round(time.perf_counter() - started, 2),
        "output": output if status == "ok" else None,
        "detail": detail,
    }


def annotate_profile(output: str, profile_path: str, top: int = 3) -> None:
    """Inject the top-*top* hot functions (by cumulative time) of a cProfile
    dump into the benchmark's JSON report, so the next perf PR starts from
    data instead of re-profiling."""
    import pstats

    stats = pstats.Stats(profile_path)
    stats.sort_stats("cumulative")
    hot = []
    for func in stats.fcn_list or []:
        filename, lineno, function = func
        # skip interpreter built-ins ("~"), synthetic frames and the
        # benchmark harness itself — the useful entries point into the
        # library code the next perf PR would optimise
        if filename.startswith(("<", "~")) or function.startswith("<"):
            continue
        if os.path.dirname(os.path.abspath(filename)) == BENCH_DIR:
            continue
        cc, nc, tt, ct, _callers = stats.stats[func]
        hot.append({
            "function": f"{os.path.basename(filename)}:{lineno}:{function}",
            "calls": nc,
            "cumulative_s": round(ct, 6),
            "tottime_s": round(tt, 6),
        })
        if len(hot) >= top:
            break
    try:
        with open(output) as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        return
    report["profile"] = {"sorted_by": "cumulative", "top_functions": hot}
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)


def extract_metrics(report: dict) -> dict:
    """Flatten a BENCH_*.json report to ``{metric name: seconds}``.

    pytest-benchmark files contribute each test's mean; script-style reports
    contribute every numeric field whose key ends in ``_s`` (per-result
    entries are qualified by their ``query``/``workload`` label).
    """
    metrics = {}
    if "benchmarks" in report:  # pytest-benchmark shape
        for entry in report["benchmarks"]:
            metrics[entry["name"]] = entry["stats"]["mean"]
        return metrics

    def label_of(container: dict) -> str:
        return str(container.get("query") or container.get("workload") or "")

    for key, value in report.items():
        if key.endswith("_s") and isinstance(value, (int, float)):
            metrics[key] = float(value)
        elif key == "results" and isinstance(value, list):
            for entry in value:
                if not isinstance(entry, dict):
                    continue
                prefix = label_of(entry)
                for sub_key, sub_value in entry.items():
                    if sub_key.endswith("_s") and isinstance(sub_value, (int, float)):
                        name = f"{prefix}.{sub_key}" if prefix else sub_key
                        metrics[name] = float(sub_value)
    return metrics


def extract_headline(report: dict) -> dict:
    """The per-PR trajectory metrics of one BENCH_*.json report.

    Script-style benchmarks may publish an explicit ``headline`` dict; those
    without one contribute their top-level ``*_s`` / ``*speedup*`` numbers,
    and pytest-benchmark files contribute the sum of their test means."""
    if isinstance(report.get("headline"), dict):
        return {k: v for k, v in report["headline"].items() if isinstance(v, (int, float))}
    if "benchmarks" in report:  # pytest-benchmark shape
        total = sum(entry["stats"]["mean"] for entry in report["benchmarks"])
        return {"total_mean_s": round(total, 6)}
    return {
        key: float(value)
        for key, value in report.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
        and (key.endswith("_s") or "speedup" in key)
    }


def _active_backend() -> str:
    """The solver backend the benchmarks ran on — the process default
    (``$REPRO_SOLVER_BACKEND`` or the reference engine), recorded per
    history entry so trajectory numbers are never compared across engines."""
    try:
        sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
        from repro.solvers.backend import default_backend

        return default_backend()
    except Exception:
        return os.environ.get("REPRO_SOLVER_BACKEND") or "reference"


def _current_label() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        )
        if out.returncode == 0:
            return out.stdout.decode().strip()
    except OSError:
        pass
    return "unknown"


def append_history(result_dir: str, label: str) -> dict:
    """Append one trajectory entry — the headline metrics of every
    BENCH_*.json in *result_dir* — to the committed history file."""
    entry = {"label": label, "backend": _active_backend(), "benchmarks": {}}
    for name in sorted(os.listdir(result_dir)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        if name in (HISTORY_FILE, "BENCH_summary.json"):
            continue
        with open(os.path.join(result_dir, name)) as handle:
            headline = extract_headline(json.load(handle))
        if headline:
            entry["benchmarks"][name[len("BENCH_"):-len(".json")]] = headline
    history_path = os.path.join(REPO_ROOT, HISTORY_FILE)
    history = []
    if os.path.exists(history_path):
        with open(history_path) as handle:
            history = json.load(handle)
    history.append(entry)
    with open(history_path, "w") as handle:
        json.dump(history, handle, indent=2)
    print(f"[history] appended entry {label!r} to {history_path}")
    return entry


def render_history() -> int:
    """Print the per-PR trend table from the committed history file."""
    history_path = os.path.join(REPO_ROOT, HISTORY_FILE)
    if not os.path.exists(history_path):
        print(f"[history] no {HISTORY_FILE} yet; run with --history first")
        return 1
    with open(history_path) as handle:
        history = json.load(handle)
    if not history:
        print("[history] empty history")
        return 1
    labels = [
        entry.get("label", "?")
        + ("@" + backend if (backend := entry.get("backend", "reference")) != "reference" else "")
        for entry in history
    ]
    rows = []  # (benchmark, metric) in first-appearance order
    for entry in history:
        for benchmark, metrics in entry.get("benchmarks", {}).items():
            for metric in metrics:
                if (benchmark, metric) not in rows:
                    rows.append((benchmark, metric))
    if not rows:
        print("[history] entries carry no headline metrics yet")
        return 1
    name_width = max(len(f"{b}.{m}") for b, m in rows)
    column = max(10, max(len(label) for label in labels) + 2)
    print("\n[history] perf trajectory (committed BENCH_history.json)")
    print(f"  {'metric':<{name_width}}" + "".join(f"{label:>{column}}" for label in labels))
    for benchmark, metric in rows:
        cells = []
        for entry in history:
            value = entry.get("benchmarks", {}).get(benchmark, {}).get(metric)
            cells.append(f"{value:>{column}.4f}" if isinstance(value, (int, float))
                         else f"{'-':>{column}}")
        print(f"  {benchmark + '.' + metric:<{name_width}}" + "".join(cells))
    return 0


def compare_reports(fresh_dir: str, committed_dir: str, threshold: float) -> int:
    """Diff fresh BENCH_*.json files against committed ones; the number of
    regressed metrics (ratio > *threshold*)."""
    regressions = 0
    fresh_files = sorted(
        name for name in os.listdir(fresh_dir)
        if name.startswith("BENCH_") and name.endswith(".json")
        and name != "BENCH_summary.json"
    )
    if not fresh_files:
        print("[compare] no fresh BENCH_*.json files to compare")
        return 0
    for name in fresh_files:
        committed_path = os.path.join(committed_dir, name)
        if not os.path.exists(committed_path):
            print(f"\n[compare] {name}: no committed baseline (new benchmark)")
            continue
        with open(os.path.join(fresh_dir, name)) as handle:
            fresh = extract_metrics(json.load(handle))
        with open(committed_path) as handle:
            committed = extract_metrics(json.load(handle))
        shared = sorted(set(fresh) & set(committed))
        print(f"\n[compare] {name}")
        width = max((len(metric) for metric in shared), default=10)
        print(f"  {'metric':<{width}}  {'committed':>12}  {'fresh':>12}  {'ratio':>7}")
        for metric in shared:
            old, new = committed[metric], fresh[metric]
            ratio = new / old if old > 0 else float("inf")
            flag = "  << REGRESSION" if ratio > threshold else ""
            print(
                f"  {metric:<{width}}  {old:>12.6f}  {new:>12.6f}  {ratio:>7.2f}{flag}"
            )
            if ratio > threshold:
                regressions += 1
        for metric in sorted(set(fresh) - set(committed)):
            print(f"  {metric:<{width}}  {'-':>12}  {fresh[metric]:>12.6f}  (new metric)")
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output-dir", default=REPO_ROOT,
                        help="directory for the BENCH_*.json files")
    parser.add_argument("--timeout", type=float, default=900.0,
                        help="per-benchmark timeout in seconds")
    parser.add_argument("--only", default=None,
                        help="run only benchmarks whose filename contains this substring")
    parser.add_argument("--scale", action="store_true",
                        help="pass --scale to scale-capable benchmarks "
                             "(10^4-tuple tier with peak-memory tracking; "
                             "slower, off in CI smoke)")
    parser.add_argument("--profile", action="store_true",
                        help="run script benchmarks under cProfile and annotate "
                             "the top-3 hot functions into each BENCH_*.json")
    parser.add_argument("--compare", action="store_true",
                        help="run into a scratch dir and diff against the committed "
                             "BENCH_*.json files (prints a regression table)")
    parser.add_argument("--tolerance", type=float, default=REGRESSION_THRESHOLD,
                        help="fresh/committed ratio above which a metric counts as "
                             f"regressed (default {REGRESSION_THRESHOLD})")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="with --compare: exit non-zero when any metric "
                             "regresses beyond the tolerance")
    parser.add_argument("--history", action="store_true",
                        help="after the run: append the headline metrics to "
                             f"{HISTORY_FILE} and print the trend table")
    parser.add_argument("--history-only", action="store_true",
                        help="skip running: append the headline metrics of the "
                             "existing BENCH_*.json in --output-dir and print "
                             "the trend table")
    parser.add_argument("--render-history", action="store_true",
                        help="print the committed perf-trajectory table and exit "
                             "(used by CI)")
    parser.add_argument("--label", default=None,
                        help="history entry label (default: the git short sha)")
    args = parser.parse_args(argv)

    if args.render_history:
        return render_history()
    if args.history_only:
        append_history(args.output_dir, args.label or _current_label())
        return render_history()

    if args.compare and os.path.realpath(args.output_dir) == os.path.realpath(REPO_ROOT):
        args.output_dir = tempfile.mkdtemp(prefix="bench_fresh_")
        print(f"[run_all] --compare: fresh results go to {args.output_dir}")
    os.makedirs(args.output_dir, exist_ok=True)
    names = discover()
    if args.only:
        names = [name for name in names if args.only in name]
    if not names:
        print("no benchmarks matched", file=sys.stderr)
        return 2

    results = []
    for name in names:
        print(f"[run_all] {name} ...", flush=True)
        result = run_one(name, args.output_dir, args.timeout,
                         scale=args.scale, profile=args.profile)
        print(f"[run_all] {name}: {result['status']} ({result['seconds']}s)", flush=True)
        if result["detail"]:
            print(result["detail"], flush=True)
        results.append(result)

    summary_path = os.path.join(args.output_dir, "BENCH_summary.json")
    with open(summary_path, "w") as handle:
        json.dump({"benchmarks": results}, handle, indent=2)
    failed = [r for r in results if r["status"] != "ok"]
    print(f"[run_all] {len(results) - len(failed)}/{len(results)} ok; summary: {summary_path}")
    if args.compare:
        regressions = compare_reports(args.output_dir, REPO_ROOT, args.tolerance)
        print(f"\n[compare] {regressions} regressed metric(s) "
              f"(threshold {args.tolerance}x)")
        if args.fail_on_regression and regressions:
            return 3
    if args.history and not failed:
        append_history(args.output_dir, args.label or _current_label())
        render_history()
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
