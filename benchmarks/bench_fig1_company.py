"""Figure 1 / Examples 1.1–3.3: the company database.

Regenerates the paper's worked results — the certain current answers of
Q1–Q4, the certain ordering of Example 3.2 and the determinism of Example 3.3
— and times the corresponding decision procedures.
"""

import pytest

from repro.reasoning.ccqa import certain_current_answers
from repro.reasoning.cop import certain_ordering
from repro.reasoning.cps import is_consistent
from repro.reasoning.dcip import is_deterministic
from repro.workloads import company


@pytest.fixture(scope="module")
def specification():
    return company.company_specification()


@pytest.fixture(scope="module")
def queries():
    return company.paper_queries()


def test_cps_company(benchmark, specification):
    assert benchmark(is_consistent, specification)


@pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4"])
def test_certain_answers_match_paper(benchmark, specification, queries, name, single_round):
    answers = single_round(benchmark, certain_current_answers, queries[name], specification)
    assert answers == company.EXPECTED_ANSWERS[name], (
        f"{name}: expected {company.EXPECTED_ANSWERS[name]}, measured {answers}"
    )


def test_certain_ordering_example_3_2(benchmark, specification, single_round):
    certain = single_round(
        benchmark, certain_ordering, specification, "Emp", {"salary": [("s1", "s3")]}
    )
    assert certain is True
    assert not certain_ordering(specification, "Dept", {"mgrFN": [("t3", "t4")]})


def test_dcip_example_3_3(benchmark, specification, single_round):
    deterministic = single_round(benchmark, is_deterministic, specification, "Emp")
    assert deterministic is True
