"""Table III, CPP / ECP / BCP rows: currency preservation decisions.

Paper claims: CPP is Πp3-complete (CQ/UCQ/∃FO⁺) and PSPACE-complete (FO),
Πp2-complete in data complexity; ECP is O(1) for consistent specifications
(Proposition 5.2); BCP is Σp4-complete / PSPACE-complete / Σp3-complete, and
PTIME for SP queries without denial constraints when k is fixed
(Theorem 6.4).  The benchmark exercises the general solvers on the paper's
example and the hardness gadget, and the PTIME SP algorithms on
constraint-free synthetic specifications.
"""

import pytest

from repro.preservation.bcp import has_bounded_extension
from repro.preservation.cpp import is_currency_preserving
from repro.preservation.ecp import currency_preserving_extension_exists
from repro.preservation.sp_fast import sp_has_bounded_extension, sp_is_currency_preserving
from repro.reductions.formulas import random_q3sat
from repro.reductions.to_cpp import cpp_from_q3sat
from repro.workloads import company
from repro.workloads.synthetic import chain_copy_specification, random_sp_query


def test_cpp_general_on_example_4_1(benchmark, single_round):
    spec = company.manager_specification()
    q2 = company.paper_queries()["Q2"]
    assert single_round(benchmark, is_currency_preserving, q2, spec) is False


def test_cpp_fo_pspace_gadget(benchmark, single_round):
    sentence = random_q3sat(2, 2, 4, seed=11)
    spec, query = cpp_from_q3sat(sentence)
    result = single_round(benchmark, is_currency_preserving, query, spec)
    assert result == (not sentence.is_true())


def test_cpp_sp_ptime_without_constraints(benchmark):
    spec = chain_copy_specification(
        relations=2, entities=6, tuples_per_entity=3, order_density=0.5,
        with_constraints=False, seed=12,
    )
    query = random_sp_query(spec, relation="R1", seed=12)
    assert benchmark(sp_is_currency_preserving, query, spec) in (True, False)


def test_ecp_is_constant_time(benchmark):
    spec = company.manager_specification()
    q2 = company.paper_queries()["Q2"]
    assert benchmark(currency_preserving_extension_exists, q2, spec)


def test_bcp_general_on_example_4_1(benchmark, single_round):
    spec = company.manager_specification()
    q2 = company.paper_queries()["Q2"]
    assert single_round(benchmark, has_bounded_extension, q2, spec, 1)


def test_bcp_sp_ptime_fixed_k(benchmark, single_round):
    spec = chain_copy_specification(
        relations=2, entities=4, tuples_per_entity=3, order_density=0.5,
        with_constraints=False, seed=13,
    )
    query = random_sp_query(spec, relation="R1", seed=13)
    assert single_round(benchmark, sp_has_bounded_extension, query, spec, 1) in (True, False)
