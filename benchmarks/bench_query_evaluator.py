"""Benchmark: indexed query-evaluation engine vs the seed full-scan engine.

Runs a small workload of conjunctive and first-order queries over synthetic
databases (≥ 1000 tuples by default) and times :func:`repro.query.evaluate`
(indexed backtracking joins with dynamic atom ordering) against
:func:`repro.query.evaluate_naive` (the retained seed engine).  Answer sets
are asserted equal for every query before timings are reported.

Standalone script (not collected by pytest):

    PYTHONPATH=src python benchmarks/bench_query_evaluator.py [--smoke] \
        [--output BENCH_query_evaluator.json]

Emits ``BENCH_query_evaluator.json`` with per-query and overall speedups so
the perf trajectory of the evaluator is tracked across PRs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.query.ast import And, Compare, Constant, Exists, Not, Query, RelationAtom, Var
from repro.query.evaluator import evaluate, evaluate_naive
from repro.workloads.synthetic import SyntheticConfig, random_specification


def build_database(entities: int, value_domain: int, seed: int = 11):
    """Two relations of *entities* single-tuple entities each (2·entities
    tuples total), attribute values drawn from ``range(value_domain)``."""
    config = SyntheticConfig(
        entities=entities,
        tuples_per_entity=1,
        attributes=3,
        order_density=0.0,
        value_domain=value_domain,
        with_constraints=False,
        relations=2,
        seed=seed,
    )
    specification = random_specification(config)
    return {name: specification.instance(name) for name in specification.instance_names()}, config


def workload_queries():
    """(name, query, scale) triples covering selection, join and
    FO-with-negation.

    ``scale`` is ``"large"`` for the ≥ 1000-tuple database or ``"small"`` for
    the FO query: the seed engine evaluates full FO by a ``domain^k`` product
    with ``domain^k`` quantifier sweeps inside, which is infeasible at 1000
    tuples — the small database keeps the baseline measurable while still
    exhibiting the skeleton-driven speedup.
    """
    e0, e1 = Var("e0"), Var("e1")
    a, b, c, b2, c2 = Var("a"), Var("b"), Var("c"), Var("b2"), Var("c2")

    selection = Query(
        (e0, b),
        Exists((a, c), And(RelationAtom("R0", (e0, a, b, c)), Compare(a, "=", Constant(3)))),
        name="selection",
    )
    join = Query(
        (e0, e1),
        Exists(
            (a, b, c, b2, c2),
            And(
                RelationAtom("R0", (e0, a, b, c)),
                RelationAtom("R1", (e1, a, b2, c2)),
                Compare(b, "=", b2),
            ),
        ),
        name="join",
    )
    triangle = Query(
        (e0,),
        Exists(
            (e1, a, b, c, b2, c2),
            And(
                RelationAtom("R0", (e0, a, b, c)),
                RelationAtom("R1", (e1, a, b, c2)),
                Compare(c2, ">=", c),
            ),
        ),
        name="two-column join",
    )
    fo_negation = Query(
        (e0, a),
        And(
            Exists((b, c), RelationAtom("R0", (e0, a, b, c))),
            Not(Exists((Var("f"), b2, c2), RelationAtom("R1", (Var("f"), a, b2, c2)))),
        ),
        name="fo-negation",
    )
    return [
        ("selection", selection, "large"),
        ("join", join, "large"),
        ("two_column_join", triangle, "large"),
        ("fo_negation", fo_negation, "small"),
    ]


def _time(function, *args, repeat: int = 1) -> tuple:
    best = None
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = function(*args)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def run(entities: int, value_domain: int, repeat: int, output: str) -> dict:
    database, config = build_database(entities, value_domain)
    small_database, _ = build_database(entities=8, value_domain=5, seed=13)
    total_tuples = sum(len(instance) for instance in database.values())
    results = []
    total_naive = 0.0
    total_indexed = 0.0
    for name, query, scale in workload_queries():
        target = database if scale == "large" else small_database
        naive_s, naive_answers = _time(evaluate_naive, query, target, repeat=repeat)
        indexed_s, indexed_answers = _time(evaluate, query, target, repeat=repeat)
        if naive_answers != indexed_answers:
            raise AssertionError(f"engines disagree on query {name!r}")
        total_naive += naive_s
        total_indexed += indexed_s
        results.append(
            {
                "query": name,
                "scale": scale,
                "answers": len(indexed_answers),
                "naive_s": round(naive_s, 6),
                "indexed_s": round(indexed_s, 6),
                "speedup": round(naive_s / indexed_s, 2) if indexed_s > 0 else None,
            }
        )
    report = {
        "benchmark": "query_evaluator",
        "workload": {
            "tuples": total_tuples,
            "relations": len(database),
            "value_domain": value_domain,
            "config": config.describe(),
        },
        "results": results,
        "total_naive_s": round(total_naive, 6),
        "total_indexed_s": round(total_indexed, 6),
        "overall_speedup": round(total_naive / total_indexed, 2) if total_indexed > 0 else None,
    }
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="smaller workload for CI smoke runs (still ≥ 1000 tuples)")
    parser.add_argument("--entities", type=int, default=None,
                        help="entities per relation (default 1500, smoke 550)")
    parser.add_argument("--value-domain", type=int, default=60)
    parser.add_argument("--repeat", type=int, default=1,
                        help="timing repetitions per engine (best-of)")
    parser.add_argument("--output", default="BENCH_query_evaluator.json")
    args = parser.parse_args(argv)
    entities = args.entities if args.entities is not None else (550 if args.smoke else 1500)
    report = run(entities, args.value_domain, args.repeat, args.output)
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
