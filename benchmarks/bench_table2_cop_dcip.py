"""Table II, COP and DCIP rows: certain ordering and deterministic current
instances.

Paper claims: Πp2-complete (combined), coNP-complete (data); PTIME without
denial constraints (Theorem 6.1).  The benchmark checks the COP/DCIP answers
on the paper's example, exercises the general (SAT-backed) solvers on
constrained synthetic data, and shows the PTIME chase handling much larger
constraint-free inputs.
"""

import pytest

from repro.reasoning.cop import certain_ordering
from repro.reasoning.dcip import is_deterministic
from repro.workloads import company
from repro.workloads.synthetic import SyntheticConfig, chain_copy_specification, random_specification


@pytest.fixture(scope="module")
def company_spec():
    return company.company_specification()


def test_cop_certain_pair_company(benchmark, company_spec, single_round):
    assert single_round(
        benchmark, certain_ordering, company_spec, "Emp", {"salary": [("s1", "s3")]}
    )


def test_cop_uncertain_pair_company(benchmark, company_spec, single_round):
    assert not single_round(
        benchmark, certain_ordering, company_spec, "Dept", {"mgrFN": [("t3", "t4")]}
    )


def test_cop_chase_large_constraint_free_input(benchmark):
    spec = chain_copy_specification(
        relations=3, entities=15, tuples_per_entity=5, order_density=0.5,
        with_constraints=False, seed=4,
    )
    name = spec.instance_names()[0]
    instance = spec.instance(name)
    eid = instance.entities()[0]
    block = instance.entity_tids(eid)
    probe = {"a0": [(block[0], block[1])]}
    assert benchmark(certain_ordering, spec, name, probe, "chase") in (True, False)


def test_dcip_company_emp(benchmark, company_spec, single_round):
    assert single_round(benchmark, is_deterministic, company_spec, "Emp")


def test_dcip_company_dept_not_deterministic(benchmark, company_spec, single_round):
    assert not single_round(benchmark, is_deterministic, company_spec, "Dept")


def test_dcip_sat_on_constrained_synthetic(benchmark, single_round):
    spec = random_specification(
        SyntheticConfig(entities=2, tuples_per_entity=3, attributes=2, with_constraints=True, seed=5)
    )
    assert single_round(benchmark, is_deterministic, spec, None, "sat") in (True, False)


def test_dcip_chase_large_constraint_free_input(benchmark):
    spec = random_specification(
        SyntheticConfig(entities=25, tuples_per_entity=5, attributes=3,
                        with_constraints=False, order_density=0.9, seed=6)
    )
    assert benchmark(is_deterministic, spec, None, "chase") in (True, False)
