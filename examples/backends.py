#!/usr/bin/env python3
"""Solver backends quickstart: pick, switch, register, snapshot.

The reasoning stack never constructs a SAT engine directly — every layer
takes an optional ``backend=`` name resolved against the registry in
:mod:`repro.solvers.backend`.  This example

* lists the registered backends (``pysat`` appears when python-sat is
  installed; this script needs nothing beyond the stdlib),
* answers the paper's running example on an explicitly chosen backend,
* switches a *live* session with ``set_backend`` (solver substrate is
  rebuilt, chase and memoised answers survive),
* registers a toy engine of its own and runs on it, and
* shows the snapshot capability split: engines that cannot pickle their
  warm state degrade to re-encode-on-restore instead of failing.

Run:  python examples/backends.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.report import render_kv
from repro.session import ReasoningSession, restore_bytes, snapshot_bytes
from repro.solvers.backend import (
    available_backends,
    create_solver,
    register_backend,
)
from repro.solvers.sat import Solver
from repro.workloads import company


class LoudSolver(Solver):
    """A toy custom backend: the reference engine plus a call counter.

    Real adapters (kissat, CaDiCaL, ...) implement the same
    ``SolverBackend`` protocol; subclassing the reference engine is the
    shortest way to a conforming implementation.
    """

    calls = 0

    def solve(self, assumptions=(), budget=None):
        type(self).calls += 1
        return super().solve(assumptions, budget=budget)

    def supports_snapshot(self):
        return False  # pretend our warm state lives in a C object


def main() -> None:
    specification = company.company_specification()
    query = company.paper_queries()["Q1"]

    print(render_kv([("registered backends", ", ".join(available_backends()))]))

    # -- 1. choose a backend per session (None -> process default) ------ #
    session = ReasoningSession(specification, backend="reference")
    print(render_kv(
        [
            ("backend", session.backend),
            ("consistent (CPS)", session.consistent()),
            ("|Q1 answers| (CCQA)", len(session.certain_answers(query))),
        ]
    ))

    # -- 2. register an engine and switch a live session onto it -------- #
    register_backend("loud", LoudSolver)
    session.set_backend("loud")
    answers = session.certain_answers(query)  # memoised: engine untouched
    session.deterministic("Emp")             # this one has to solve
    print(render_kv(
        [
            ("backend after set_backend", session.backend),
            ("answers survived the switch", len(answers)),
            ("LoudSolver.solve calls", LoudSolver.calls),
        ]
    ))

    # -- 3. snapshot capability: degrade, don't fail -------------------- #
    engine = create_solver("loud", 4)
    print(render_kv([("loud supports_snapshot", engine.supports_snapshot())]))
    restored = restore_bytes(snapshot_bytes(session))
    print(render_kv(
        [
            ("restored backend", restored.backend),
            ("restored answers agree", restored.certain_answers(query) == answers),
        ]
    ))


if __name__ == "__main__":
    main()
