#!/usr/bin/env python3
"""Quickstart: the paper's running example (Figure 1, Examples 1.1–3.3).

Builds the company database (Emp, Dept), the denial constraints ϕ1–ϕ4 of
Example 2.1 and the copy function ρ of Example 2.2, then

* checks that the specification is consistent (CPS),
* answers the queries Q1–Q4 of Example 1.1 with certain current answers,
* checks the certain ordering of Example 3.2 (COP), and
* checks determinism of the Emp current instance (Example 3.3, DCIP).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.report import render_kv, render_table
from repro.reasoning.ccqa import certain_current_answers
from repro.reasoning.cop import certain_ordering
from repro.reasoning.cps import is_consistent
from repro.reasoning.dcip import is_deterministic
from repro.workloads import company


def main() -> None:
    specification = company.company_specification()
    queries = company.paper_queries()

    print(render_kv(
        [
            ("relations", ", ".join(specification.instance_names())),
            ("tuples", specification.total_size()),
            ("denial constraints",
             sum(len(v) for v in specification.constraints.values())),
            ("copy functions", len(specification.copy_functions)),
            ("consistent (CPS)", is_consistent(specification)),
        ],
        title="Specification S0 (Figure 1 + Example 2.1/2.2)",
    ))
    print()

    rows = []
    descriptions = {
        "Q1": "Mary's current salary",
        "Q2": "Mary's current last name",
        "Q3": "Mary's current address",
        "Q4": "current budget of R&D",
    }
    for name, query in queries.items():
        answers = certain_current_answers(query, specification)
        expected = company.EXPECTED_ANSWERS[name]
        rows.append(
            [
                name,
                descriptions[name],
                ", ".join(str(a[0]) for a in sorted(answers, key=repr)),
                "matches paper" if answers == expected else f"PAPER SAYS {expected}",
            ]
        )
    print(render_table(
        ["query", "meaning", "certain current answer", "check"],
        rows,
        title="Certain current answers (Example 1.1 / 2.5)",
    ))
    print()

    print(render_kv(
        [
            ("s1 ≺_salary s3 certain (Example 3.2)",
             certain_ordering(specification, "Emp", {"salary": [("s1", "s3")]})),
            ("t3 ≺_mgrFN t4 certain (Example 3.2)",
             certain_ordering(specification, "Dept", {"mgrFN": [("t3", "t4")]})),
            ("Emp deterministic for current instances (Example 3.3)",
             is_deterministic(specification, "Emp")),
            ("Dept deterministic for current instances",
             is_deterministic(specification, "Dept")),
        ],
        title="Certain orderings and determinism",
    ))


if __name__ == "__main__":
    main()
