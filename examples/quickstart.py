#!/usr/bin/env python3
"""Quickstart: the paper's running example (Figure 1, Examples 1.1–3.3).

Builds the company database (Emp, Dept), the denial constraints ϕ1–ϕ4 of
Example 2.1 and the copy function ρ of Example 2.2, opens one
:class:`~repro.session.ReasoningSession` over the specification, then

* checks that the specification is consistent (CPS),
* answers the queries Q1–Q4 of Example 1.1 with certain current answers,
* checks the certain ordering of Example 3.2 (COP), and
* checks determinism of the Emp current instance (Example 3.3, DCIP).

All four problems run on the session's shared warm substrate: the chase
fixpoint and the incremental SAT solver the CPS check builds are reused by
every later question.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.report import render_kv, render_table
from repro.session import ReasoningSession
from repro.workloads import company


def main() -> None:
    specification = company.company_specification()
    queries = company.paper_queries()
    session = ReasoningSession(specification)

    print(render_kv(
        [
            ("relations", ", ".join(specification.instance_names())),
            ("tuples", specification.total_size()),
            ("denial constraints",
             sum(len(v) for v in specification.constraints.values())),
            ("copy functions", len(specification.copy_functions)),
            ("consistent (CPS)", session.consistent()),
        ],
        title="Specification S0 (Figure 1 + Example 2.1/2.2)",
    ))
    print()

    rows = []
    descriptions = {
        "Q1": "Mary's current salary",
        "Q2": "Mary's current last name",
        "Q3": "Mary's current address",
        "Q4": "current budget of R&D",
    }
    for name, query in queries.items():
        answers = session.certain_answers(query)
        expected = company.EXPECTED_ANSWERS[name]
        rows.append(
            [
                name,
                descriptions[name],
                ", ".join(str(a[0]) for a in sorted(answers, key=repr)),
                "matches paper" if answers == expected else f"PAPER SAYS {expected}",
            ]
        )
    print(render_table(
        ["query", "meaning", "certain current answer", "check"],
        rows,
        title="Certain current answers (Example 1.1 / 2.5)",
    ))
    print()

    print(render_kv(
        [
            ("s1 ≺_salary s3 certain (Example 3.2)",
             session.certain_ordering("Emp", {"salary": [("s1", "s3")]})),
            ("t3 ≺_mgrFN t4 certain (Example 3.2)",
             session.certain_ordering("Dept", {"mgrFN": [("t3", "t4")]})),
            ("Emp deterministic for current instances (Example 3.3)",
             session.deterministic("Emp")),
            ("Dept deterministic for current instances",
             session.deterministic("Dept")),
        ],
        title="Certain orderings and determinism",
    ))


if __name__ == "__main__":
    main()
