#!/usr/bin/env python3
"""A CRM-style scenario: stale customer records without timestamps.

This example mirrors the motivating scenario of the paper's introduction
("2% of records in a customer file become obsolete in one month"): a customer
master table accumulates several records per customer (after entity
resolution), none of which carries a reliable timestamp.  Business rules play
the role of denial constraints:

* the loyalty tier only ever increases (bronze → silver → gold),
* a record with a more current tier also has the customer's current email,
* the billing system copies addresses from the CRM, and records with a more
  current address also carry the more current outstanding balance.

The example answers "what is each customer's current email / balance?" with
certain current answers, shows which cells remain undetermined, and uses the
currency-preservation analysis to decide whether the billing system has
imported enough data to answer its query.

Run:  python examples/crm_deduplication.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.report import render_kv, render_table
from repro.core.copy_function import CopyFunction, CopySignature
from repro.core.denial import AttrRef, Comparison, Const, CurrencyAtom, DenialConstraint
from repro.core.instance import TemporalInstance
from repro.core.schema import RelationSchema
from repro.core.specification import Specification
from repro.preservation.cpp import is_currency_preserving
from repro.query.ast import SPQuery
from repro.reasoning.ccqa import certain_current_answers
from repro.reasoning.cps import is_consistent
from repro.reasoning.dcip import is_deterministic, realizable_maxima

TIER_RANK = {"bronze": 1, "silver": 2, "gold": 3}


def crm_schema() -> RelationSchema:
    return RelationSchema("CRM", ("name", "email", "address", "tier_rank"))


def billing_schema() -> RelationSchema:
    return RelationSchema("Billing", ("address", "balance"))


def crm_instance() -> TemporalInstance:
    rows = {
        # customer c1: three records accumulated over the years
        "r1": {"EID": "c1", "name": "Ada Byron", "email": "ada@oldmail.example",
               "address": "1 Analytical Row", "tier_rank": TIER_RANK["bronze"]},
        "r2": {"EID": "c1", "name": "Ada Byron", "email": "ada@research.example",
               "address": "7 Engine Street", "tier_rank": TIER_RANK["silver"]},
        "r3": {"EID": "c1", "name": "Ada Lovelace", "email": "ada@lovelace.example",
               "address": "7 Engine Street", "tier_rank": TIER_RANK["gold"]},
        # customer c2: two records, tiers equal — currency undetermined
        "r4": {"EID": "c2", "name": "Charles Babbage", "email": "cb@mill.example",
               "address": "2 Difference Lane", "tier_rank": TIER_RANK["silver"]},
        "r5": {"EID": "c2", "name": "Charles Babbage", "email": "charles@mill.example",
               "address": "9 Jacquard Ave", "tier_rank": TIER_RANK["silver"]},
    }
    return TemporalInstance.from_rows(crm_schema(), rows)


def billing_instance() -> TemporalInstance:
    rows = {
        "b1": {"EID": "c1", "address": "1 Analytical Row", "balance": 120},
        "b2": {"EID": "c1", "address": "7 Engine Street", "balance": 0},
        "b3": {"EID": "c2", "address": "2 Difference Lane", "balance": 340},
    }
    return TemporalInstance.from_rows(billing_schema(), rows)


def crm_constraints() -> list:
    schema = crm_schema()
    tier_monotone = DenialConstraint(
        schema, ("s", "t"),
        body=[Comparison(AttrRef("s", "tier_rank"), ">", AttrRef("t", "tier_rank"))],
        head=CurrencyAtom("t", "tier_rank", "s"),
        name="tier_monotone",
    )
    tier_to_email = DenialConstraint(
        schema, ("s", "t"),
        body=[CurrencyAtom("t", "tier_rank", "s")],
        head=CurrencyAtom("t", "email", "s"),
        name="tier_implies_email",
    )
    tier_to_address = DenialConstraint(
        schema, ("s", "t"),
        body=[CurrencyAtom("t", "tier_rank", "s")],
        head=CurrencyAtom("t", "address", "s"),
        name="tier_implies_address",
    )
    tier_to_name = DenialConstraint(
        schema, ("s", "t"),
        body=[CurrencyAtom("t", "tier_rank", "s")],
        head=CurrencyAtom("t", "name", "s"),
        name="tier_implies_name",
    )
    return [tier_monotone, tier_to_email, tier_to_address, tier_to_name]


def billing_constraints() -> list:
    schema = billing_schema()
    address_to_balance = DenialConstraint(
        schema, ("s", "t"),
        body=[CurrencyAtom("t", "address", "s")],
        head=CurrencyAtom("t", "balance", "s"),
        name="address_implies_balance",
    )
    return [address_to_balance]


def build_specification() -> Specification:
    copy_addresses = CopyFunction(
        "billing_addresses",
        CopySignature(billing_schema(), ("address",), crm_schema(), ("address",)),
        target="Billing",
        source="CRM",
        mapping={"b1": "r1", "b2": "r2", "b3": "r4"},
    )
    return Specification(
        instances={"CRM": crm_instance(), "Billing": billing_instance()},
        constraints={"CRM": crm_constraints(), "Billing": billing_constraints()},
        copy_functions=[copy_addresses],
    )


def main() -> None:
    specification = build_specification()
    print(render_kv(
        [
            ("customers", len(crm_instance().entities())),
            ("CRM records", len(crm_instance())),
            ("billing records", len(billing_instance())),
            ("consistent (CPS)", is_consistent(specification)),
            ("CRM current instance deterministic (DCIP)", is_deterministic(specification, "CRM")),
        ],
        title="CRM + Billing specification",
    ))
    print()

    email_query = SPQuery("CRM", crm_schema(), ["name", "email"], name="current_email")
    balance_query = SPQuery("Billing", billing_schema(), ["balance"], name="current_balance")

    emails = certain_current_answers(email_query, specification)
    print(render_table(
        ["customer name", "certain current email"],
        sorted(emails) or [["(none certain)", ""]],
        title="Certain current emails",
    ))
    print()

    rows = []
    for eid in crm_instance().entities():
        for attribute in ("email", "address"):
            maxima = realizable_maxima(specification, "CRM", eid, attribute)
            values = sorted({crm_instance().tuple_by_tid(t)[attribute] for t in maxima})
            rows.append([eid, attribute, "certain" if len(values) == 1 else "ambiguous",
                         " / ".join(values)])
    print(render_table(
        ["customer", "attribute", "status", "possible current values"],
        rows,
        title="Per-cell currency analysis",
    ))
    print()

    balances = certain_current_answers(balance_query, specification)
    preserving = is_currency_preserving(balance_query, specification)
    print(render_kv(
        [
            ("certain current balances", sorted(balances)),
            ("billing copy function currency preserving for the balance query", preserving),
        ],
        title="Billing-side analysis (CPP)",
    ))


if __name__ == "__main__":
    main()
