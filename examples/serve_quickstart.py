#!/usr/bin/env python3
"""The fault-tolerant reasoning service in five minutes.

Starts a :class:`repro.serve.ReasoningService` over two worker processes and
walks the serving surface:

* submitting reads (``ProblemRequest``) and a mutation (``Mutation``) that
  routes to the warm session owning the specification's structural
  fingerprint;
* streaming answers as they complete, out of submission order;
* deadline propagation — an expired per-request deadline comes back as a
  *labeled* ``Degraded`` answer, not an exception and not a wrong value;
* what a worker crash looks like from the outside, by compiling in a fault
  with :mod:`repro.testing.faults`: the killed worker is respawned, the read
  is retried, and the caller just sees ``attempts == 2``.

Run:  python examples/serve_quickstart.py
"""

from __future__ import annotations

import asyncio
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve import Mutation, ReasoningService
from repro.session import ProblemRequest
from repro.testing.faults import Fault, FaultPlan
from repro.workloads import company
from repro.workloads.synthetic import preservation_workload

ORDER = {"salary": [("s1", "s2")]}


async def serve_basics() -> None:
    spec = company.company_specification()
    queries = company.paper_queries()

    async with ReasoningService(processes=2) as service:
        # --- reads route to the warm session for this specification --------
        answers = await service.gather(
            [
                (spec, ProblemRequest("cps")),
                (spec, ProblemRequest("dcip", args=("Emp",))),
                (spec, ProblemRequest("ccqa", query=queries["Q1"])),
            ]
        )
        print("consistent (CPS):        ", answers[0].value)
        print("deterministic Emp (DCIP):", answers[1].value)
        print("certain answers to Q1:   ", answers[2].value)

        # --- a mutation commits into the owning session's log --------------
        before = await service.submit(spec, ProblemRequest("cop", args=("Emp", ORDER)))
        committed = await service.submit(
            spec, Mutation("add_order", args=("Emp", "salary", "s1", "s2"))
        )
        after = await service.submit(spec, ProblemRequest("cop", args=("Emp", ORDER)))
        print("\ncertain order before/after add_order:", before.value, "->", after.value)
        assert committed.ok

        # --- streaming yields (index, answer) as results land --------------
        print("\nstreaming five CPS checks:")
        stream = service.stream([(spec, ProblemRequest("cps")) for _ in range(5)])
        async for index, answer in stream:
            print(f"  request {index}: ok={answer.ok} value={answer.value}")

        # --- an expired deadline degrades with a label, never lies ---------
        # (deadlines are charged inside the solver, so a *cold* session is
        # needed here — the warm session above would answer CPS from its
        # memo without ever entering a solve, expired deadline or not)
        cold_spec, cold_query = preservation_workload(
            candidates=3, conflict_groups=2, seed=1
        )
        late = await service.submit(
            cold_spec, ProblemRequest("cpp", query=cold_query), deadline=-1.0
        )
        assert not late.ok and late.degraded is not None
        print("\nexpired deadline:", late.degraded.reason, "| attempted:",
              late.degraded.attempted)


async def serve_through_a_crash() -> None:
    # generation=0 scopes the kill to the first worker incarnation: the
    # respawned worker starts with fresh fault counters and answers the retry
    plan = FaultPlan.of(Fault("worker.execute", "kill", after=1, times=1,
                              generation=0))
    spec = company.company_specification()

    async with ReasoningService(processes=1, retries=1, fault_plan=plan) as service:
        warm = await service.submit(spec, ProblemRequest("cps"))
        survived = await service.submit(spec, ProblemRequest("cps"))
        stats = service.stats()["supervisor"]

    print("\n--- crash drill ---")
    print("first read:  ok =", warm.ok, "attempts =", warm.attempts)
    print("second read: ok =", survived.ok, "attempts =", survived.attempts,
          "(worker was killed mid-request and respawned)")
    print("supervisor respawns:", stats["respawns"])
    assert survived.ok and survived.attempts == 2


def main() -> None:
    asyncio.run(serve_basics())
    asyncio.run(serve_through_a_crash())


# worker processes are spawned and re-import __main__; the guard is mandatory
if __name__ == "__main__":
    main()
