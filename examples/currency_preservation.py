#!/usr/bin/env python3
"""Currency preservation in data copying (Figure 3, Example 4.1).

The Emp relation imports tuples from a Mgr source through the copy function
ρ(s3) = m2.  This example shows

* that ρ is *not* currency preserving for Q2 ("Mary's current last name"):
  importing the divorced record m3 changes the certain answer from Dupont to
  Smith;
* that the extended copy function ρ1 (which also imports m3) *is* currency
  preserving;
* that a currency-preserving extension always exists for a consistent
  specification (ECP, Proposition 5.2), and that one of bounded size exists
  here (BCP with k = 1).

Run:  python examples/currency_preservation.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.report import render_kv, render_table
from repro.preservation.bcp import bounded_currency_preserving_extension
from repro.preservation.cpp import find_violating_extension, is_currency_preserving
from repro.preservation.ecp import currency_preserving_extension_exists, maximal_extension
from repro.preservation.extensions import apply_imports, candidate_imports
from repro.reasoning.ccqa import certain_current_answers
from repro.workloads import company


def main() -> None:
    specification = company.manager_specification()
    q2 = company.paper_queries()["Q2"]

    base_answer = certain_current_answers(q2, specification)
    print(render_kv(
        [
            ("sources", ", ".join(specification.instance_names())),
            ("copy function", "Emp[FN,LN,address,salary,status] <= Mgr[...] with rho(s3)=m2"),
            ("certain answer to Q2", sorted(base_answer)),
            ("rho currency preserving for Q2 (CPP)", is_currency_preserving(q2, specification)),
        ],
        title="Specification S1 (Figure 3 + Example 4.1)",
    ))
    print()

    witness = find_violating_extension(q2, specification)
    print("Violating extension found:", witness.describe())
    extended_answer = certain_current_answers(q2, witness.specification)
    print("Certain answer to Q2 after that import:", sorted(extended_answer))
    print()

    rows = []
    for candidate in candidate_imports(specification):
        extension = apply_imports(specification, [candidate])
        answers = certain_current_answers(q2, extension.specification)
        preserving = is_currency_preserving(q2, extension.specification)
        rows.append(
            [
                f"import {candidate.source_tid} -> {candidate.target_eid}",
                ", ".join(a[0] for a in sorted(answers)) or "(none certain)",
                preserving,
            ]
        )
    print(render_table(
        ["extension of rho", "certain answer to Q2", "currency preserving?"],
        rows,
        title="Single-import extensions (Example 4.1)",
    ))
    print()

    bounded = bounded_currency_preserving_extension(q2, specification, k=1)
    print(render_kv(
        [
            ("ECP: can rho be extended to preserve currency?",
             currency_preserving_extension_exists(q2, specification)),
            ("BCP (k=1): bounded extension found", bounded.describe() if bounded else None),
            ("maximal extension size", maximal_extension(specification).size_increase),
        ],
        title="ECP and BCP",
    ))


if __name__ == "__main__":
    main()
