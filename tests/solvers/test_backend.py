"""The SolverBackend seam: registry, normative assumption semantics, and the
snapshot degradation / cross-backend-refusal contracts.

The assumption-semantics tests run once per registered backend (the session
``backend`` fixture from conftest), so an optional engine that drifts from
the reference semantics fails here before any differential sweep does.
"""

from __future__ import annotations

import pickle

import pytest

from repro.exceptions import SolverError, SpecificationError
from repro.session import ReasoningSession, SnapshotStore, restore_bytes, snapshot_bytes
from repro.solvers.backend import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    PYSAT_AVAILABLE,
    SolverBackend,
    _REGISTRY,
    available_backends,
    backend_factory,
    create_solver,
    default_backend,
    register_backend,
    resolve_backend,
)
from repro.solvers.order_encoding import CompletionEncoder
from repro.solvers.sat import Solver
from repro.workloads.synthetic import SyntheticConfig, random_specification


class _FragileSolver(Solver):
    """A reference engine that pretends its warm state cannot be pickled,
    standing in for C-extension backends in snapshot-degradation tests."""

    def supports_snapshot(self) -> bool:
        return False


@pytest.fixture()
def scratch_backend():
    """Register a second fully functional backend under a scratch name and
    guarantee it is unregistered afterwards."""
    name = "scratch"
    register_backend(name, _FragileSolver)
    try:
        yield name
    finally:
        _REGISTRY.pop(name, None)


def _spec(seed=0):
    return random_specification(
        SyntheticConfig(
            entities=2,
            tuples_per_entity=2,
            attributes=2,
            order_density=0.4,
            value_domain=3,
            with_constraints=True,
            seed=seed,
        )
    )


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_reference_is_always_first(self):
        names = available_backends()
        assert names[0] == DEFAULT_BACKEND
        assert names[1:] == sorted(names[1:])

    def test_unknown_backend_reports_available(self):
        with pytest.raises(SolverError) as excinfo:
            backend_factory("no-such-engine")
        assert "no-such-engine" in str(excinfo.value)
        assert "reference" in str(excinfo.value)

    def test_resolve_none_is_process_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None) == DEFAULT_BACKEND

    def test_env_var_overrides_default(self, monkeypatch, scratch_backend):
        monkeypatch.setenv(BACKEND_ENV_VAR, scratch_backend)
        assert default_backend() == scratch_backend
        assert resolve_backend(None) == scratch_backend
        # an explicit argument still wins over the environment
        assert resolve_backend("reference") == "reference"

    def test_env_var_pointing_at_unregistered_engine_fails_fast(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "missing-engine")
        with pytest.raises(SolverError):
            resolve_backend(None)

    def test_register_rejects_bad_names(self):
        with pytest.raises(SolverError):
            register_backend("", Solver)

    def test_create_solver_builds_the_named_engine(self, scratch_backend):
        engine = create_solver(scratch_backend, 3)
        assert isinstance(engine, _FragileSolver)
        assert engine.num_variables == 3

    def test_every_registered_backend_satisfies_the_protocol(self, backend):
        assert isinstance(create_solver(backend, 2), SolverBackend)

    @pytest.mark.skipif(not PYSAT_AVAILABLE, reason="python-sat not installed")
    def test_pysat_registers_when_importable(self):
        assert "pysat" in available_backends()
        assert create_solver("pysat").supports_snapshot() is False


# --------------------------------------------------------------------------- #
# Normative assumption semantics, per backend (regression for the historical
# duplicate/contradictory divergence between engines)
# --------------------------------------------------------------------------- #
class TestAssumptionSemantics:
    def test_duplicate_assumptions_are_idempotent(self, backend):
        solver = create_solver(backend, 2)
        solver.add_clause([1, 2])
        model = solver.solve(assumptions=[1, 1, 1])
        assert model is not None and model[1] is True
        assert solver.analyze_final() is None

    def test_duplicates_do_not_inflate_the_core(self, backend):
        solver = create_solver(backend, 2)
        solver.add_clause([-1, -2])
        assert solver.solve(assumptions=[2, 1, 2, 1]) is None
        core = solver.analyze_final()
        assert core is not None
        assert len(core) == len(set(core))
        assert set(core) <= {1, 2}
        assert core == sorted(core, key=abs)

    def test_contradictory_pair_is_unsat_with_the_pair_as_core(self, backend):
        solver = create_solver(backend, 1)
        assert solver.solve(assumptions=[1, -1]) is None
        assert solver.analyze_final() == [1, -1]

    def test_contradictory_pair_core_orders_earlier_literal_first(self, backend):
        solver = create_solver(backend, 3)
        assert solver.solve(assumptions=[-3, 1, 3]) is None
        assert solver.analyze_final() == [-3, 3]

    def test_contradiction_short_circuits_before_search(self, backend):
        solver = create_solver(backend, 2)
        solver.add_clause([1, 2])
        before = solver.stats()["conflicts"]
        assert solver.solve(assumptions=[2, -2]) is None
        assert solver.stats()["conflicts"] == before

    def test_core_is_a_subset_of_the_assumptions(self, backend):
        solver = create_solver(backend, 4)
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        solver.add_clause([-3, -1])
        assert solver.solve(assumptions=[1, 4]) is None
        core = solver.analyze_final()
        assert core is not None and core
        assert set(core) <= {1, 4}

    def test_models_are_total_over_allocated_variables(self, backend):
        solver = create_solver(backend, 4)
        solver.add_clause([1])
        model = solver.solve()
        assert model is not None
        assert set(model) == {1, 2, 3, 4}


# --------------------------------------------------------------------------- #
# Snapshot capability and graceful degradation
# --------------------------------------------------------------------------- #
class TestSnapshotDegradation:
    def test_reference_backend_supports_snapshot(self):
        assert create_solver("reference").supports_snapshot() is True

    def test_encoder_drops_unpicklable_engine_and_re_encodes(self, scratch_backend):
        encoder = CompletionEncoder(_spec(), backend=scratch_backend)
        verdict = encoder.satisfiable()
        assert encoder._solver is not None  # warmed
        clone = pickle.loads(pickle.dumps(encoder))
        assert clone._solver is None  # degraded: engine not carried
        assert clone._fed_clauses == 0
        assert clone.satisfiable() == verdict  # re-encoded, same answer

    def test_session_snapshot_round_trips_on_non_snapshot_backend(self, scratch_backend):
        specification = _spec(3)
        session = ReasoningSession(specification, backend=scratch_backend)
        expected = (session.consistent(), session.deterministic())
        restored = restore_bytes(snapshot_bytes(session))
        assert restored.backend == scratch_backend
        assert (restored.consistent(), restored.deterministic()) == expected


# --------------------------------------------------------------------------- #
# Cross-backend restore refusal
# --------------------------------------------------------------------------- #
class TestCrossBackendRestore:
    def test_snapshot_records_the_backend_name(self, scratch_backend):
        session = ReasoningSession(_spec(), backend=scratch_backend)
        assert session.snapshot().backend == scratch_backend

    def test_restore_refuses_a_different_backend(self, scratch_backend):
        payload = snapshot_bytes(ReasoningSession(_spec()))
        with pytest.raises(SpecificationError, match="refusing to restore"):
            restore_bytes(payload, backend=scratch_backend)
        # the matching backend (and the "whatever it was" default) still work
        assert restore_bytes(payload, backend="reference").backend == "reference"
        assert restore_bytes(payload).backend == "reference"

    def test_restore_of_an_unregistered_backend_fails_cleanly(self, scratch_backend):
        payload = snapshot_bytes(ReasoningSession(_spec(), backend=scratch_backend))
        _REGISTRY.pop(scratch_backend)
        try:
            with pytest.raises(SolverError):
                restore_bytes(payload)
        finally:
            register_backend(scratch_backend, _FragileSolver)

    def test_store_treats_backend_mismatch_as_miss_without_deleting(
        self, tmp_path, scratch_backend
    ):
        specification = _spec(5)
        store = SnapshotStore(str(tmp_path))
        store.store_session(ReasoningSession(specification))
        assert store.load_session(specification, backend=scratch_backend) is None
        assert store.entries()  # the (valid) file was left in place
        hit = store.load_session(specification, backend="reference")
        assert hit is not None and hit.backend == "reference"


# --------------------------------------------------------------------------- #
# set_backend: the registered cache mutation
# --------------------------------------------------------------------------- #
class TestSetBackend:
    def test_same_backend_is_a_no_op(self):
        session = ReasoningSession(_spec())
        mutations = session.mutations
        session.set_backend("reference")
        assert session.mutations == mutations

    def test_switch_rebuilds_solver_holders_and_keeps_answers(self, scratch_backend):
        session = ReasoningSession(_spec(7))
        verdict = session.consistent()
        warm_encoder = session.encoder
        session.set_backend(scratch_backend)
        assert session.backend == scratch_backend
        assert session.encoder is not warm_encoder  # rebuilt on the new engine
        assert session.encoder.backend == scratch_backend
        assert session.consistent() == verdict

    def test_switch_to_unknown_backend_is_rejected_atomically(self):
        session = ReasoningSession(_spec())
        with pytest.raises(SolverError):
            session.set_backend("missing-engine")
        assert session.backend == "reference"
