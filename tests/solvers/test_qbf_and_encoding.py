"""Unit tests for the QBF evaluator and the completion (order) encoding."""

import pytest

from repro.core.instance import TemporalInstance
from repro.core.schema import RelationSchema
from repro.core.specification import Specification
from repro.solvers.order_encoding import CompletionEncoder
from repro.solvers.qbf import evaluate_qbf, exists, forall
from repro.workloads import company


class TestQBF:
    def test_simple_exists(self):
        assert evaluate_qbf([exists("x")], lambda a: a["x"])

    def test_simple_forall_false(self):
        assert not evaluate_qbf([forall("x")], lambda a: a["x"])

    def test_forall_tautology(self):
        assert evaluate_qbf([forall("x")], lambda a: a["x"] or not a["x"])

    def test_exists_forall(self):
        # ∃x ∀y (x ∨ y) is true with x = 1
        assert evaluate_qbf([exists("x"), forall("y")], lambda a: a["x"] or a["y"])

    def test_forall_exists(self):
        # ∀x ∃y (x xor y) is true
        assert evaluate_qbf([forall("x"), exists("y")], lambda a: a["x"] != a["y"])
        # ∀x ∃y (x and y) is false
        assert not evaluate_qbf([forall("x"), exists("y")], lambda a: a["x"] and a["y"])

    def test_prebound_assignment(self):
        assert evaluate_qbf([forall("y")], lambda a: a["x"] or a["y"], {"x": True})

    def test_unknown_quantifier_rejected(self):
        from repro.exceptions import SolverError

        with pytest.raises(SolverError):
            evaluate_qbf([("some", ("x",))], lambda a: True)


class TestCompletionEncoder:
    def test_company_specification_is_satisfiable(self, company_spec):
        assert CompletionEncoder(company_spec).satisfiable()

    def test_decoded_model_is_consistent_completion(self, company_spec):
        encoder = CompletionEncoder(company_spec)
        completion = encoder.solve()
        assert completion is not None
        assert company_spec.is_consistent_completion(completion)

    def test_require_pair_filters_models(self, company_spec):
        encoder = CompletionEncoder(company_spec)
        encoder.require_pair("Emp", "salary", "s3", "s1")  # contradicts ϕ1
        assert not encoder.satisfiable()

    def test_forbid_all_of(self, company_spec):
        encoder = CompletionEncoder(company_spec)
        # s1 ≺_salary s3 holds in every completion, so forbidding it alone is UNSAT
        encoder.forbid_all_of([("Emp", "salary", "s1", "s3")])
        assert not encoder.satisfiable()

    def test_require_maximal(self, company_spec):
        encoder = CompletionEncoder(company_spec)
        encoder.require_maximal("Emp", "salary", company.MARY, "s3")
        assert encoder.satisfiable()
        blocked = CompletionEncoder(company_spec)
        blocked.require_maximal("Emp", "salary", company.MARY, "s1")
        assert not blocked.satisfiable()

    def test_iterate_completions_all_consistent(self):
        schema = RelationSchema("R", ("A",))
        instance = TemporalInstance.from_rows(
            schema,
            {"t1": {"EID": "e", "A": 1}, "t2": {"EID": "e", "A": 2}},
        )
        spec = Specification({"R": instance})
        encoder = CompletionEncoder(spec)
        completions = list(encoder.iterate_completions())
        assert len(completions) == 2
        assert all(spec.is_consistent_completion(c) for c in completions)

    def test_solve_then_satisfiable_reuses_the_cached_model(self, company_spec):
        encoder = CompletionEncoder(company_spec)
        assert encoder.solve() is not None
        decisions = encoder.solver.stats()["decisions"]
        assert encoder.satisfiable()
        assert encoder.solve() is not None
        # no clause was added, so no further search happened
        assert encoder.solver.stats()["decisions"] == decisions
        # adding a clause invalidates the cache and re-solves
        encoder.require_pair("Emp", "salary", "s3", "s1")  # contradicts ϕ1
        assert not encoder.satisfiable()
        assert encoder.solver.stats()["decisions"] >= decisions

    def test_satisfiable_under_assumptions(self):
        schema = RelationSchema("R", ("A",))
        instance = TemporalInstance.from_rows(
            schema,
            {"t1": {"EID": "e", "A": 1}, "t2": {"EID": "e", "A": 2}},
        )
        encoder = CompletionEncoder(Specification({"R": instance}))
        assert encoder.satisfiable([("R", "A", "t1", "t2")])
        assert encoder.satisfiable([("R", "A", "t2", "t1")])
        # antisymmetry: both directions at once are contradictory
        assert not encoder.satisfiable(
            [("R", "A", "t1", "t2"), ("R", "A", "t2", "t1")]
        )
        # assumptions never mutate the encoding
        assert encoder.satisfiable()
        assert len(encoder.cnf.clauses) == 2  # antisymmetry + totality only

    def test_unknown_assumption_pair_rejected(self):
        from repro.exceptions import SolverError

        schema = RelationSchema("R", ("A",))
        instance = TemporalInstance.from_rows(
            schema,
            {"t1": {"EID": "e1", "A": 1}, "t2": {"EID": "e2", "A": 2}},
        )
        encoder = CompletionEncoder(Specification({"R": instance}))
        # t1 and t2 belong to different entities, so their pair is not encoded
        with pytest.raises(SolverError):
            encoder.satisfiable([("R", "A", "t1", "t2")])

    def test_inconsistent_copy_orders_unsat(self):
        """Example 2.3's second scenario: copied budget orders conflicting with
        the orders that ϕ1/ϕ3/ϕ4 force make the specification inconsistent."""
        spec = company.company_specification()
        from repro.core.copy_function import CopyFunction, CopySignature

        source_schema = RelationSchema("Src", ("budget",), eid="dname")
        source = TemporalInstance.from_rows(
            source_schema,
            {
                "x1": {"dname": "R&D", "budget": 6500},
                "x3": {"dname": "R&D", "budget": 6000},
            },
            orders={"budget": [("x3", "x1")]},  # opposite of what ϕ4 forces
        )
        spec.instances["Src"] = source
        spec.constraints.setdefault("Src", [])
        spec.add_copy_function(
            CopyFunction(
                "rho1",
                CopySignature(company.dept_schema(), ("budget",), source_schema, ("budget",)),
                target="Dept",
                source="Src",
                mapping={"t1": "x1", "t3": "x3"},
            )
        )
        assert not CompletionEncoder(spec).satisfiable()
