"""Resource budgets: resumable interruption of SAT search and the ambient
deadline scope the session layer propagates through.

The load-bearing property is *resumability*: a budget-interrupted solver keeps
its learnt clauses, activities and saved phases, so re-solving continues where
the budget ran out and reaches the identical verdict a fresh unbudgeted solver
would."""

import random
import time

import pytest

from repro.exceptions import ResourceBudgetExceeded, SpecificationError
from repro.session import ReasoningSession
from repro.solvers.budget import Budget, budget_scope, current_budget
from repro.solvers.sat import Solver
from repro.workloads.synthetic import preservation_workload


def _pigeonhole_clauses(pigeons, holes):
    """PHP(pigeons, holes): UNSAT when pigeons > holes, and hard enough for
    CDCL that a small conflict budget interrupts mid-refutation."""

    def var(p, h):
        return p * holes + h + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


def _random_3sat_clauses(seed, num_variables=30, num_clauses=126):
    """Near-threshold random 3-SAT; seed 4 is satisfiable and costs the CDCL
    engine ~23 conflicts, so a tight budget deterministically interrupts it."""
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_variables + 1), 3)
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return clauses


def _loaded_solver(clauses):
    solver = Solver()
    for clause in clauses:
        solver.add_clause(clause)
    return solver


class TestBudgetObject:
    def test_requires_at_least_one_limit(self):
        with pytest.raises(SpecificationError):
            Budget()

    def test_from_timeout_sets_absolute_deadline(self):
        budget = Budget.from_timeout(10.0)
        remaining = budget.remaining_time()
        assert remaining is not None and 9.0 < remaining <= 10.0

    def test_ensure_passes_budgets_through_and_coerces_numbers(self):
        budget = Budget(max_conflicts=5)
        assert Budget.ensure(budget) is budget
        coerced = Budget.ensure(2)
        assert coerced.deadline is not None

    def test_check_raises_on_expired_deadline(self):
        budget = Budget(deadline=time.monotonic() - 1.0)
        with pytest.raises(ResourceBudgetExceeded) as excinfo:
            budget.check()
        assert excinfo.value.reason == "deadline"

    def test_charge_raises_at_conflict_cap_with_counters(self):
        budget = Budget(max_conflicts=2)
        budget.charge(conflicts=1, propagations=10)
        with pytest.raises(ResourceBudgetExceeded) as excinfo:
            budget.charge(conflicts=1, propagations=7)
        error = excinfo.value
        assert error.reason == "conflicts"
        assert error.conflicts == 2
        assert error.propagations == 17

    def test_spent_reports_cumulative_work(self):
        budget = Budget(max_conflicts=100)
        budget.charge(conflicts=3, propagations=40)
        spent = budget.spent()
        assert spent["conflicts"] == 3.0
        assert spent["propagations"] == 40.0
        assert spent["elapsed_s"] >= 0.0


class TestSolverBudget:
    def test_conflict_budget_interrupts_with_learnt_clauses_retained(self):
        solver = _loaded_solver(_pigeonhole_clauses(5, 4))
        with pytest.raises(ResourceBudgetExceeded) as excinfo:
            solver.solve(budget=Budget(max_conflicts=3))
        assert excinfo.value.reason == "conflicts"
        assert excinfo.value.conflicts == 3
        # the interrupted search's learning survives
        assert solver.stats()["learnt"] >= 1

    def test_resume_reaches_identical_unsat_verdict(self):
        clauses = _pigeonhole_clauses(5, 4)
        interrupted = _loaded_solver(clauses)
        with pytest.raises(ResourceBudgetExceeded):
            interrupted.solve(budget=Budget(max_conflicts=3))
        learnt_at_interrupt = interrupted.stats()["learnt"]
        resumed = interrupted.solve()
        fresh = _loaded_solver(clauses).solve()
        assert resumed is None and fresh is None
        # the resumed search built on the interrupted one, not from scratch
        assert interrupted.stats()["learnt"] >= learnt_at_interrupt

    def test_resume_reaches_identical_sat_verdict(self):
        clauses = _random_3sat_clauses(seed=4)
        interrupted = _loaded_solver(clauses)
        with pytest.raises(ResourceBudgetExceeded):
            interrupted.solve(budget=Budget(max_conflicts=3))
        model = interrupted.solve()
        assert model is not None
        for clause in clauses:
            assert any(model[abs(l)] == (l > 0) for l in clause)

    def test_repeated_interrupts_accumulate_to_the_verdict(self):
        # drip-feed the refutation three conflicts at a time: each budget is
        # fresh, but the solver's learnt state carries the search forward
        solver = _loaded_solver(_pigeonhole_clauses(5, 4))
        verdict = "pending"
        for _ in range(100):
            try:
                verdict = solver.solve(budget=Budget(max_conflicts=3))
                break
            except ResourceBudgetExceeded:
                continue
        assert verdict is None

    def test_expired_deadline_never_starts_the_search(self):
        solver = _loaded_solver(_pigeonhole_clauses(5, 4))
        with pytest.raises(ResourceBudgetExceeded) as excinfo:
            solver.solve(budget=Budget(deadline=time.monotonic() - 1.0))
        assert excinfo.value.reason == "deadline"
        assert excinfo.value.conflicts == 0
        assert solver.stats()["conflicts"] == 0

    def test_propagation_budget_fires(self):
        solver = _loaded_solver(_pigeonhole_clauses(5, 4))
        with pytest.raises(ResourceBudgetExceeded) as excinfo:
            solver.solve(budget=Budget(max_propagations=1))
        assert excinfo.value.reason == "propagations"

    def test_ambient_scope_covers_solvers_built_inside_it(self):
        with budget_scope(Budget(max_conflicts=3)) as budget:
            assert current_budget() is budget
            solver = _loaded_solver(_pigeonhole_clauses(5, 4))
            with pytest.raises(ResourceBudgetExceeded):
                solver.solve()
        assert current_budget() is None

    def test_ambient_budget_is_cumulative_across_solve_calls(self):
        easy = [[1, 2], [-1, 2]]
        with budget_scope(Budget(max_conflicts=3)) as budget:
            _loaded_solver(easy).solve()
            spent_once = budget.conflicts
            hard = _loaded_solver(_pigeonhole_clauses(5, 4))
            with pytest.raises(ResourceBudgetExceeded):
                hard.solve()
            assert budget.conflicts == 3 >= spent_once

    def test_explicit_budget_overrides_ambient_scope(self):
        with budget_scope(Budget(max_conflicts=1)):
            solver = _loaded_solver(_pigeonhole_clauses(5, 4))
            assert solver.solve(budget=Budget(max_conflicts=10_000)) is None

    def test_nested_scopes_innermost_wins(self):
        outer = Budget(max_conflicts=1)
        inner = Budget(max_conflicts=10_000)
        with budget_scope(outer):
            with budget_scope(inner):
                assert current_budget() is inner
                solver = _loaded_solver(_pigeonhole_clauses(5, 4))
                assert solver.solve() is None
            assert current_budget() is outer
            assert outer.conflicts == 0

    def test_none_scope_is_a_no_op(self):
        outer = Budget(max_conflicts=5)
        with budget_scope(outer):
            with budget_scope(None):
                assert current_budget() is outer


class TestSessionDeadline:
    """The ``deadline=`` kwarg on session methods installs a budget around
    the whole evaluation — including solvers built lazily inside it."""

    def _workload_session(self):
        spec, query = preservation_workload(candidates=3, conflict_groups=2, seed=1)
        return ReasoningSession(spec), query

    def test_cpp_budget_interrupts_and_resumes_to_identical_verdict(self):
        session, query = self._workload_session()
        with pytest.raises(ResourceBudgetExceeded) as excinfo:
            session.cpp(query, deadline=Budget(max_conflicts=1))
        assert excinfo.value.reason == "conflicts"
        fresh, _ = self._workload_session()
        assert session.cpp(query) == fresh.cpp(query) is True

    def test_expired_deadline_raises_before_any_search(self):
        session, query = self._workload_session()
        with pytest.raises(ResourceBudgetExceeded) as excinfo:
            session.cpp(query, deadline=Budget(deadline=time.monotonic() - 1.0))
        assert excinfo.value.reason == "deadline"
        assert excinfo.value.conflicts == 0

    def test_numeric_deadline_is_seconds_from_now(self, company_spec):
        session = ReasoningSession(company_spec)
        assert session.consistent(deadline=30.0) == session.consistent()

    def test_ambient_scope_covers_session_methods_without_a_kwarg(self):
        session, query = self._workload_session()
        with budget_scope(Budget(deadline=time.monotonic() - 1.0)):
            with pytest.raises(ResourceBudgetExceeded):
                session.cpp(query)

    def test_deadline_kwarg_spans_the_whole_facade(self, company_spec):
        session = ReasoningSession(company_spec)
        assert session.certain_ordering(
            "Emp", {"salary": [("s1", "s3")]}, deadline=30.0
        ) == session.certain_ordering("Emp", {"salary": [("s1", "s3")]})
        assert session.deterministic("Emp", deadline=30.0) == session.deterministic(
            "Emp"
        )

    def test_interrupted_method_leaves_session_reusable(self):
        # a budget interrupt must not poison the session's warm caches
        session, query = self._workload_session()
        with pytest.raises(ResourceBudgetExceeded):
            session.cpp(query, deadline=Budget(max_conflicts=1))
        assert session.ecp(query) in (True, False)
        assert session.cpp(query) is True
