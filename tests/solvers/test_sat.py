"""Unit tests for the CNF representation and the DPLL solver."""

import pytest

from repro.exceptions import SolverError
from repro.solvers.cnf import CNF
from repro.solvers.sat import is_satisfiable, iterate_models, solve, solve_cnf


class TestCNF:
    def test_variable_allocation_is_stable(self):
        cnf = CNF()
        assert cnf.variable("a") == 1
        assert cnf.variable("b") == 2
        assert cnf.variable("a") == 1
        assert cnf.num_variables == 2
        assert cnf.name_of(2) == "b"

    def test_unknown_index_raises(self):
        with pytest.raises(SolverError):
            CNF().name_of(1)

    def test_literal_polarity(self):
        cnf = CNF()
        assert cnf.literal("a", True) == 1
        assert cnf.literal("a", False) == -1

    def test_add_named_clause_and_unit(self):
        cnf = CNF()
        cnf.add_named_clause([("a", True), ("b", False)])
        cnf.add_unit("c", False)
        assert len(cnf) == 2

    def test_add_implication_with_and_without_conclusion(self):
        cnf = CNF()
        cnf.add_implication([("a", True)], ("b", True))
        cnf.add_implication([("a", True), ("b", True)], None)
        assert cnf.clauses[0] == (-1, 2)
        assert cnf.clauses[1] == (-1, -2)

    def test_zero_literal_rejected(self):
        with pytest.raises(SolverError):
            CNF().add_clause([0])

    def test_decode_model(self):
        cnf = CNF()
        cnf.add_unit("a", True)
        model = solve_cnf(cnf)
        assert cnf.decode_model(model) == {"a": True}


class TestDPLL:
    def test_satisfiable_simple(self):
        assert solve([(1, 2), (-1, 2)]) is not None

    def test_unsatisfiable_pair(self):
        assert solve([(1,), (-1,)]) is None

    def test_empty_clause_is_unsat(self):
        assert solve([()]) is None

    def test_empty_formula_is_sat(self):
        assert solve([]) == {}

    def test_model_satisfies_all_clauses(self):
        clauses = [(1, 2, 3), (-1, -2), (-2, -3), (-1, -3), (2, 3)]
        model = solve(clauses, num_variables=3)
        assert model is not None
        for clause in clauses:
            assert any(model[abs(l)] == (l > 0) for l in clause)

    def test_pigeonhole_2_into_1_is_unsat(self):
        # two pigeons, one hole: x1 and x2 must both hold but clash
        clauses = [(1,), (2,), (-1, -2)]
        assert solve(clauses) is None

    def test_chain_implication_propagation(self):
        # a, a->b, b->c, c-> not a  is unsatisfiable
        clauses = [(1,), (-1, 2), (-2, 3), (-3, -1)]
        assert solve(clauses) is None

    def test_deep_branching_does_not_hit_recursion_limit(self):
        # 1500 independent binary clauses force one branching decision each;
        # the recursive seed formulation exceeded Python's recursion limit
        # (regression test for the explicit-stack rewrite)
        n = 1500
        clauses = [(i, i + n) for i in range(1, n + 1)]
        model = solve(clauses, num_variables=2 * n)
        assert model is not None
        for clause in clauses:
            assert any(model[abs(l)] == (l > 0) for l in clause)

    def test_deep_unsatisfiable_formula(self):
        # same shape plus a contradiction on the last pair
        n = 1200
        clauses = [(i, i + n) for i in range(1, n + 1)]
        clauses += [(-n, ), (-2 * n,)]
        assert solve(clauses) is None

    def test_is_satisfiable_wrapper(self):
        cnf = CNF()
        cnf.add_named_clause([("x", True), ("y", True)])
        assert is_satisfiable(cnf)
        cnf.add_unit("x", False)
        cnf.add_unit("y", False)
        assert not is_satisfiable(cnf)


class TestModelEnumeration:
    def test_enumerate_all_models(self):
        cnf = CNF()
        cnf.add_named_clause([("a", True), ("b", True)])
        models = list(iterate_models(cnf))
        assert len(models) == 3  # TT, TF, FT

    def test_enumeration_respects_limit(self):
        cnf = CNF()
        cnf.add_named_clause([("a", True), ("b", True)])
        assert len(list(iterate_models(cnf, limit=2))) == 2

    def test_projected_enumeration(self):
        cnf = CNF()
        a, b = cnf.variable("a"), cnf.variable("b")
        cnf.add_clause([a, -a])  # tautology touching a
        cnf.add_clause([b, -b])
        projected = list(iterate_models(cnf, project_onto=[a]))
        assert len(projected) == 2  # only the two values of a

    def test_unsat_enumeration_is_empty(self):
        cnf = CNF()
        cnf.add_unit("a", True)
        cnf.add_unit("a", False)
        assert list(iterate_models(cnf)) == []
