"""Unit tests for the CNF representation and the CDCL/naive SAT engines."""

import pytest

from repro.exceptions import SolverError
from repro.solvers.cnf import CNF
from repro.solvers.sat import (
    Solver,
    is_satisfiable,
    iterate_models,
    solve,
    solve_cnf,
    solve_naive,
)


class TestCNF:
    def test_variable_allocation_is_stable(self):
        cnf = CNF()
        assert cnf.variable("a") == 1
        assert cnf.variable("b") == 2
        assert cnf.variable("a") == 1
        assert cnf.num_variables == 2
        assert cnf.name_of(2) == "b"

    def test_unknown_index_raises(self):
        with pytest.raises(SolverError):
            CNF().name_of(1)

    def test_literal_polarity(self):
        cnf = CNF()
        assert cnf.literal("a", True) == 1
        assert cnf.literal("a", False) == -1

    def test_add_named_clause_and_unit(self):
        cnf = CNF()
        cnf.add_named_clause([("a", True), ("b", False)])
        cnf.add_unit("c", False)
        assert len(cnf) == 2

    def test_add_implication_with_and_without_conclusion(self):
        cnf = CNF()
        cnf.add_implication([("a", True)], ("b", True))
        cnf.add_implication([("a", True), ("b", True)], None)
        assert cnf.clauses[0] == (-1, 2)
        assert cnf.clauses[1] == (-1, -2)

    def test_zero_literal_rejected(self):
        with pytest.raises(SolverError):
            CNF().add_clause([0])

    def test_decode_model(self):
        cnf = CNF()
        cnf.add_unit("a", True)
        model = solve_cnf(cnf)
        assert cnf.decode_model(model) == {"a": True}


class TestDPLL:
    def test_satisfiable_simple(self):
        assert solve([(1, 2), (-1, 2)]) is not None

    def test_unsatisfiable_pair(self):
        assert solve([(1,), (-1,)]) is None

    def test_empty_clause_is_unsat(self):
        assert solve([()]) is None

    def test_empty_formula_is_sat(self):
        assert solve([]) == {}

    def test_model_satisfies_all_clauses(self):
        clauses = [(1, 2, 3), (-1, -2), (-2, -3), (-1, -3), (2, 3)]
        model = solve(clauses, num_variables=3)
        assert model is not None
        for clause in clauses:
            assert any(model[abs(l)] == (l > 0) for l in clause)

    def test_pigeonhole_2_into_1_is_unsat(self):
        # two pigeons, one hole: x1 and x2 must both hold but clash
        clauses = [(1,), (2,), (-1, -2)]
        assert solve(clauses) is None

    def test_chain_implication_propagation(self):
        # a, a->b, b->c, c-> not a  is unsatisfiable
        clauses = [(1,), (-1, 2), (-2, 3), (-3, -1)]
        assert solve(clauses) is None

    def test_deep_branching_does_not_hit_recursion_limit(self):
        # 1500 independent binary clauses force one branching decision each;
        # the recursive seed formulation exceeded Python's recursion limit
        # (regression test for the explicit-stack rewrite)
        n = 1500
        clauses = [(i, i + n) for i in range(1, n + 1)]
        model = solve(clauses, num_variables=2 * n)
        assert model is not None
        for clause in clauses:
            assert any(model[abs(l)] == (l > 0) for l in clause)

    def test_deep_unsatisfiable_formula(self):
        # same shape plus a contradiction on the last pair
        n = 1200
        clauses = [(i, i + n) for i in range(1, n + 1)]
        clauses += [(-n, ), (-2 * n,)]
        assert solve(clauses) is None

    def test_is_satisfiable_wrapper(self):
        cnf = CNF()
        cnf.add_named_clause([("x", True), ("y", True)])
        assert is_satisfiable(cnf)
        cnf.add_unit("x", False)
        cnf.add_unit("y", False)
        assert not is_satisfiable(cnf)


class TestIncrementalSolver:
    """The CDCL :class:`Solver`: assumptions, incrementality, backjumping."""

    def test_solve_under_assumptions_does_not_mutate_the_clauses(self):
        solver = Solver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 3])
        model = solver.solve(assumptions=[-2])
        assert model is not None and model[1] and model[3]
        assert solver.solve(assumptions=[-1, -2]) is None
        # the database is untouched: the unconstrained polarity is back
        assert solver.solve(assumptions=[2]) is not None
        assert solver.solve() is not None

    def test_contradictory_assumptions_are_unsat(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[1, -1]) is None
        assert solver.solve() is not None

    def test_assumptions_on_fresh_variables_allocate_them(self):
        solver = Solver()
        solver.add_clause([1])
        model = solver.solve(assumptions=[-5])
        assert model is not None
        assert model[5] is False
        assert solver.num_variables == 5

    def test_incremental_clause_addition(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve() is not None
        solver.add_clause([-1])
        model = solver.solve()
        assert model is not None and model[2]
        solver.add_clause([-2])
        assert solver.solve() is None
        # a root-level contradiction is permanent
        assert solver.add_clause([1, 2]) is False
        assert solver.solve() is None

    def test_models_are_total(self):
        solver = Solver(num_variables=4)
        solver.add_clause([1])
        model = solver.solve()
        assert set(model) == {1, 2, 3, 4}

    def test_learnt_clauses_persist_across_calls(self):
        solver = Solver()
        # chain: assuming 1 forces 2..5, then conflicts
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        solver.add_clause([-3, 4])
        solver.add_clause([-4, 5])
        solver.add_clause([-5, -1])
        assert solver.solve(assumptions=[1]) is None
        learnt_after_first = solver.stats()["learnt"]
        assert solver.solve(assumptions=[1]) is None
        assert solver.solve() is not None
        assert solver.stats()["learnt"] >= learnt_after_first

    def test_non_chronological_backjump(self):
        # default phases decide -1, -2, ..., -5 in variable order; the two
        # clauses conflict only once both 1 and 5 are false, and the learnt
        # clause (5 ∨ 1) jumps from decision level 5 straight back to level 1,
        # skipping the unrelated decisions on 2, 3 and 4
        solver = Solver(num_variables=6)
        solver.add_clause([1, 5, 6])
        solver.add_clause([1, 5, -6])
        model = solver.solve()
        assert model is not None
        for clause in ([1, 5, 6], [1, 5, -6]):
            assert any(model[abs(l)] == (l > 0) for l in clause)
        stats = solver.stats()
        assert stats["conflicts"] >= 1
        assert stats["learnt"] >= 1
        assert stats["max_backjump"] >= 3

    def test_zero_literal_rejected_everywhere(self):
        solver = Solver()
        with pytest.raises(SolverError):
            solver.add_clause([0])
        with pytest.raises(SolverError):
            solver.solve(assumptions=[0])

    def test_blocking_clause_enumeration_stays_warm(self):
        # enumerate all 8 models of a tautological 3-variable formula on one
        # solver via blocking clauses — the learnt state must never corrupt
        # the model set
        solver = Solver(num_variables=3)
        solver.add_clause([1, 2, 3, -1])
        models = set()
        while True:
            model = solver.solve()
            if model is None:
                break
            assignment = tuple(model[v] for v in (1, 2, 3))
            assert assignment not in models
            models.add(assignment)
            solver.add_clause([-v if model[v] else v for v in (1, 2, 3)])
        assert len(models) == 8


class TestCDCLAgainstNaive:
    """The CDCL engine and the retained seed engine agree on verdicts."""

    def _random_clauses(self, seed, num_variables=8, max_clauses=40):
        import random

        rng = random.Random(seed)
        count = rng.randint(1, max_clauses)
        return [
            tuple(
                rng.choice([1, -1]) * rng.randint(1, num_variables)
                for _ in range(rng.randint(1, 3))
            )
            for _ in range(count)
        ]

    @pytest.mark.parametrize("seed", range(40))
    def test_verdict_equivalence_on_random_formulas(self, seed):
        clauses = self._random_clauses(seed)
        cdcl = solve(clauses, num_variables=8)
        naive = solve_naive(clauses, num_variables=8)
        assert (cdcl is None) == (naive is None)
        if cdcl is not None:
            for clause in clauses:
                assert any(cdcl[abs(l)] == (l > 0) for l in clause)


class TestModelEnumeration:
    def test_enumerate_all_models(self):
        cnf = CNF()
        cnf.add_named_clause([("a", True), ("b", True)])
        models = list(iterate_models(cnf))
        assert len(models) == 3  # TT, TF, FT

    def test_enumeration_respects_limit(self):
        cnf = CNF()
        cnf.add_named_clause([("a", True), ("b", True)])
        assert len(list(iterate_models(cnf, limit=2))) == 2

    def test_projected_enumeration(self):
        cnf = CNF()
        a, b = cnf.variable("a"), cnf.variable("b")
        cnf.add_clause([a, -a])  # tautology touching a
        cnf.add_clause([b, -b])
        projected = list(iterate_models(cnf, project_onto=[a]))
        assert len(projected) == 2  # only the two values of a

    def test_unsat_enumeration_is_empty(self):
        cnf = CNF()
        cnf.add_unit("a", True)
        cnf.add_unit("a", False)
        assert list(iterate_models(cnf)) == []


class TestAnalyzeFinal:
    """Assumption-core extraction (``Solver.analyze_final``)."""

    @staticmethod
    def _implication_chain():
        solver = Solver()
        solver.add_clause([-1, 2])  # 1 -> 2
        solver.add_clause([-2, 3])  # 2 -> 3
        return solver

    def test_none_after_a_satisfiable_solve(self):
        solver = self._implication_chain()
        assert solver.solve(assumptions=[1]) is not None
        assert solver.analyze_final() is None

    def test_core_is_a_subset_of_the_assumptions(self):
        solver = self._implication_chain()
        assumptions = [1, 5, -3, 7]
        assert solver.solve(assumptions=assumptions) is None
        core = solver.analyze_final()
        assert core is not None
        assert set(core) <= set(assumptions)

    def test_core_excludes_irrelevant_assumptions(self):
        solver = self._implication_chain()
        assert solver.solve(assumptions=[1, 5, -3, 7]) is None
        assert set(solver.analyze_final()) == {1, -3}

    def test_core_is_unsat_when_reasserted(self):
        solver = self._implication_chain()
        assert solver.solve(assumptions=[1, 5, -3, 7]) is None
        core = solver.analyze_final()
        assert solver.solve(assumptions=core) is None
        # ... and the solver is not poisoned: dropping the core solves fine
        assert solver.solve(assumptions=[5, 7]) is not None

    def test_contradictory_assumptions_core(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[3, -3]) is None
        core = solver.analyze_final()
        assert set(core) == {3, -3}
        assert solver.solve(assumptions=core) is None

    def test_root_level_implication_yields_singleton_core(self):
        solver = Solver()
        solver.add_clause([4])  # root-level unit
        assert solver.solve(assumptions=[-4, 6]) is None
        assert solver.analyze_final() == [-4]

    def test_unsat_database_yields_empty_core(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve(assumptions=[2]) is None
        assert solver.analyze_final() == []
        # the empty core re-asserted: the solver stays UNSAT
        assert solver.solve(assumptions=[]) is None

    def test_core_from_learnt_conflicts(self):
        # pigeonhole-style: assumptions force 3 pigeons into 2 holes
        solver = Solver()
        holes = {(p, h): p * 2 + h + 1 for p in range(3) for h in range(2)}
        for p in range(3):
            solver.add_clause([holes[(p, 0)], holes[(p, 1)]])
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    solver.add_clause([-holes[(p1, h)], -holes[(p2, h)]])
        assert solver.solve() is None is solver.solve(assumptions=[99])
        assert solver.analyze_final() == []
