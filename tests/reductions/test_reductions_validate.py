"""Empirical validation of the paper's reductions on bounded instances.

Each test checks the defining iff of the reduction: the source problem's
answer (computed by brute force / QBF expansion) must coincide with the
decision of the target problem on the constructed specification (computed by
the library's solvers).  This is the executable counterpart of the
correctness arguments in Theorems 3.1, 3.5 and 5.1.
"""

import pytest

from repro.preservation.cpp import is_currency_preserving
from repro.reasoning.ccqa import is_certain_answer
from repro.reasoning.cps import is_consistent
from repro.reductions.betweenness import BetweennessInstance, solve_betweenness
from repro.reductions.formulas import (
    Clause,
    CNFFormula,
    DNFFormula,
    Literal,
    QuantifiedSentence,
    random_3cnf,
    random_forall_exists_3cnf,
    random_q3sat,
)
from repro.reductions.to_ccqa import (
    ccqa_from_3sat_complement,
    ccqa_from_forall_exists_3cnf,
    ccqa_from_q3sat,
)
from repro.reductions.to_cpp import cpp_from_q3sat
from repro.reductions.to_cps import cps_from_betweenness, cps_from_exists_forall_3dnf

L = Literal


def ef3dnf(clauses):
    return QuantifiedSentence([("exists", ("x1",)), ("forall", ("y1",))], DNFFormula(clauses))


class TestTheorem31CombinedComplexity:
    """∃*∀*3DNF  →  CPS."""

    @pytest.mark.parametrize(
        "sentence",
        [
            ef3dnf([Clause((L("x1"), L("x1"), L("x1")))]),  # true: pick x1 = 1
            ef3dnf([Clause((L("x1", False), L("x1", False), L("x1", False)))]),  # true: x1 = 0
            ef3dnf([Clause((L("x1"), L("y1"), L("y1"))), Clause((L("x1"), L("y1", False), L("y1", False)))]),
            ef3dnf([Clause((L("y1"), L("y1"), L("y1")))]),  # false: ∀y fails at y=0
            ef3dnf([Clause((L("x1"), L("y1"), L("y1")))]),  # false
        ],
    )
    def test_iff_on_handcrafted_sentences(self, sentence):
        specification = cps_from_exists_forall_3dnf(sentence)
        assert is_consistent(specification, method="sat") == sentence.is_true()

    def test_specification_shape(self):
        sentence = ef3dnf([Clause((L("x1"), L("y1"), L("y1")))])
        specification = cps_from_exists_forall_3dnf(sentence)
        instance = specification.instance("RV")
        # 2 tuples per variable + 8 disjunction tuples
        assert len(instance) == 2 + 2 + 8
        assert len(specification.constraints_for("RV")) == 1


class TestTheorem31DataComplexity:
    """Betweenness  →  CPS with fixed schema and constraints."""

    @pytest.mark.parametrize(
        "instance",
        [
            BetweennessInstance(("a", "b", "c"), (("a", "b", "c"),)),
            BetweennessInstance(("a", "b", "c"), (("a", "b", "c"), ("b", "a", "c"))),
            BetweennessInstance(("a", "b", "c", "d"), (("a", "b", "c"), ("b", "c", "d"))),
        ],
    )
    def test_iff_on_small_instances(self, instance):
        specification = cps_from_betweenness(instance)
        assert is_consistent(specification, method="sat") == (solve_betweenness(instance) is not None)

    def test_constraints_are_fixed(self):
        small = cps_from_betweenness(BetweennessInstance(("a", "b", "c"), (("a", "b", "c"),)))
        large = cps_from_betweenness(
            BetweennessInstance(("a", "b", "c", "d"), (("a", "b", "c"), ("b", "c", "d")))
        )
        assert [c.name for c in small.constraints_for("RB")] == [
            c.name for c in large.constraints_for("RB")
        ]


class TestTheorem35CCQA:
    def test_forall_exists_3cnf_iff(self):
        for seed in range(4):
            sentence = random_forall_exists_3cnf(2, 1, 2, seed=seed)
            specification, query, answer = ccqa_from_forall_exists_3cnf(sentence)
            assert is_certain_answer(query, answer, specification) == sentence.is_true()

    def test_forall_exists_handcrafted_true(self):
        # ∀x ∃y (x ∨ y): true
        sentence = QuantifiedSentence(
            [("forall", ("x1",)), ("exists", ("y1",))],
            CNFFormula([Clause((L("x1"), L("y1"), L("y1")))]),
        )
        specification, query, answer = ccqa_from_forall_exists_3cnf(sentence)
        assert is_certain_answer(query, answer, specification)

    def test_forall_exists_handcrafted_false(self):
        # ∀x ∃y (x ∧ ... ): encode as two clauses forcing x true — false
        sentence = QuantifiedSentence(
            [("forall", ("x1",)), ("exists", ("y1",))],
            CNFFormula([Clause((L("x1"), L("x1"), L("x1")))]),
        )
        specification, query, answer = ccqa_from_forall_exists_3cnf(sentence)
        assert not is_certain_answer(query, answer, specification)

    def test_3sat_complement_iff(self):
        satisfiable = CNFFormula([Clause((L("x1"), L("x2"), L("x3")))])
        unsatisfiable = CNFFormula(
            [Clause((L("x1"), L("x1"), L("x1"))), Clause((L("x1", False),) * 3)]
        )
        for formula in (satisfiable, unsatisfiable):
            specification, query, answer = ccqa_from_3sat_complement(formula)
            assert is_certain_answer(query, answer, specification) == (not formula.is_satisfiable())

    def test_3sat_complement_query_is_fixed(self):
        _, q1, _ = ccqa_from_3sat_complement(random_3cnf(2, 2, seed=1))
        _, q2, _ = ccqa_from_3sat_complement(random_3cnf(3, 4, seed=2))
        assert q1.arity == q2.arity == 1

    def test_q3sat_iff(self):
        for seed in range(3):
            sentence = random_q3sat(2, 2, 3, seed=seed)
            specification, query, answer = ccqa_from_q3sat(sentence)
            assert is_certain_answer(query, answer, specification) == sentence.is_true()


class TestTheorem51CPP:
    def test_q3sat_iff(self):
        for seed in range(3):
            sentence = random_q3sat(2, 2, 3, seed=seed)
            specification, query = cpp_from_q3sat(sentence)
            assert is_currency_preserving(query, specification) == (not sentence.is_true())

    def test_q3sat_handcrafted_false_sentence(self):
        # ∃a ∀b (a ∧ b ... ) — false, so ρ is currency preserving
        sentence = QuantifiedSentence(
            [("exists", ("a",)), ("forall", ("b",))],
            CNFFormula([Clause((L("b"), L("b"), L("b")))]),
        )
        specification, query = cpp_from_q3sat(sentence)
        assert not sentence.is_true()
        assert is_currency_preserving(query, specification)
