"""Tests for the formula families and the Betweenness substrate."""

import pytest

from repro.exceptions import ReductionError
from repro.reductions.betweenness import BetweennessInstance, random_betweenness, solve_betweenness
from repro.reductions.formulas import (
    Clause,
    CNFFormula,
    DNFFormula,
    Literal,
    QuantifiedSentence,
    random_3cnf,
    random_3dnf,
    random_exists_forall_3dnf,
    random_forall_exists_3cnf,
    random_q3sat,
)


class TestFormulas:
    def test_literal_evaluation(self):
        assert Literal("x").evaluate({"x": True})
        assert not Literal("x", False).evaluate({"x": True})

    def test_cnf_evaluation(self):
        formula = CNFFormula([Clause((Literal("x"), Literal("y", False)))])
        assert formula.evaluate({"x": True, "y": True})
        assert not formula.evaluate({"x": False, "y": True})

    def test_dnf_evaluation(self):
        formula = DNFFormula([Clause((Literal("x"), Literal("y")))])
        assert formula.evaluate({"x": True, "y": True})
        assert not formula.evaluate({"x": True, "y": False})

    def test_empty_formula_rejected(self):
        with pytest.raises(ReductionError):
            CNFFormula([])

    def test_variables_in_first_appearance_order(self):
        formula = CNFFormula(
            [Clause((Literal("b"), Literal("a"))), Clause((Literal("a"), Literal("c")))]
        )
        assert formula.variables() == ("b", "a", "c")

    def test_satisfiability_bruteforce(self):
        sat = CNFFormula([Clause((Literal("x"), Literal("y")))])
        unsat = CNFFormula([Clause((Literal("x"),) * 3), Clause((Literal("x", False),) * 3)])
        assert sat.is_satisfiable()
        assert not unsat.is_satisfiable()

    def test_quantified_sentence_truth(self):
        # ∀x ∃y (x ∨ y) is true; ∃y ∀x (x ∧ y) is false
        matrix = CNFFormula([Clause((Literal("x"), Literal("y"), Literal("y")))])
        s = QuantifiedSentence([("forall", ("x",)), ("exists", ("y",))], matrix)
        assert s.is_true()
        matrix2 = DNFFormula([Clause((Literal("x"), Literal("y"), Literal("y")))])
        s2 = QuantifiedSentence([("exists", ("y",)), ("forall", ("x",))], matrix2)
        assert not s2.is_true()

    def test_generators_are_deterministic(self):
        assert random_3cnf(3, 4, seed=5).variables() == random_3cnf(3, 4, seed=5).variables()
        a = random_exists_forall_3dnf(2, 2, 3, seed=9)
        b = random_exists_forall_3dnf(2, 2, 3, seed=9)
        assert a.is_true() == b.is_true()

    def test_generator_shapes(self):
        assert len(random_3dnf(3, 5, seed=0)) == 5
        sentence = random_forall_exists_3cnf(2, 1, 4, seed=0)
        assert sentence.prefix[0][0] == "forall"
        assert sentence.prefix[1][0] == "exists"
        q3 = random_q3sat(3, 2, 4, seed=0)
        assert [kind for kind, _ in q3.prefix] == ["exists", "forall", "exists"]


class TestBetweenness:
    def test_single_triple_is_solvable(self):
        instance = BetweennessInstance(("a", "b", "c"), (("a", "b", "c"),))
        assert solve_betweenness(instance) is not None

    def test_contradictory_triples_unsolvable(self):
        instance = BetweennessInstance(("a", "b", "c"), (("a", "b", "c"), ("b", "a", "c")))
        assert solve_betweenness(instance) is None

    def test_solution_satisfies_all_triples(self):
        instance = random_betweenness(5, 4, seed=3)
        order = solve_betweenness(instance)
        assert order is not None
        position = {element: index for index, element in enumerate(order)}
        for a, b, c in instance.triples:
            assert position[a] < position[b] < position[c] or position[c] < position[b] < position[a]

    def test_biased_generator_always_solvable(self):
        for seed in range(5):
            instance = random_betweenness(5, 5, satisfiable_bias=True, seed=seed)
            assert solve_betweenness(instance) is not None

    def test_degenerate_triple_rejected(self):
        with pytest.raises(ReductionError):
            BetweennessInstance(("a", "b", "c"), (("a", "a", "b"),))

    def test_unknown_element_rejected(self):
        with pytest.raises(ReductionError):
            BetweennessInstance(("a", "b", "c"), (("a", "b", "z"),))

    def test_too_few_elements_rejected(self):
        with pytest.raises(ReductionError):
            random_betweenness(2, 1)
