"""Tests for the company workload (Figures 1 and 3) and the synthetic generators."""

import pytest

from repro.query.classify import classify
from repro.reasoning.cps import is_consistent
from repro.workloads import company
from repro.workloads.synthetic import (
    SyntheticConfig,
    chain_copy_specification,
    random_specification,
    random_sp_query,
)


class TestCompanyWorkload:
    def test_figure_1_emp_contents(self):
        emp = company.emp_instance()
        assert len(emp) == 5
        assert emp.tuple_by_tid("s3")["address"] == "6 Main St"
        assert emp.tuple_by_tid("s1")["status"] == "single"
        assert emp.entities() == [company.MARY, company.BOB, company.ROBERT]

    def test_figure_1_dept_contents(self):
        dept = company.dept_instance()
        assert len(dept) == 4
        assert dept.schema.eid == "dname"
        assert dept.entities() == ["R&D"]
        assert dept.tuple_by_tid("t2")["budget"] == 7000

    def test_figure_3_mgr_contents(self):
        mgr = company.mgr_instance()
        assert len(mgr) == 3
        assert mgr.tuple_by_tid("m3")["status"] == "divorced"

    def test_initial_currency_orders_are_empty(self):
        for instance in (company.emp_instance(), company.dept_instance(), company.mgr_instance()):
            for attribute in instance.schema.attributes:
                assert instance.order(attribute).pair_count() == 0

    def test_constraint_sets(self):
        assert [c.name for c in company.emp_constraints()] == ["phi1_Emp", "phi2_Emp", "phi3_Emp"]
        assert [c.name for c in company.dept_constraints()] == ["phi4_Dept"]
        assert [c.name for c in company.mgr_constraints()] == ["phi5_Mgr"]
        assert len(company.status_transition_constraints(company.emp_schema())) == 3
        assert len(company.status_currency_constraints(company.emp_schema())) == 4

    def test_copy_function_of_example_2_2(self):
        rho = company.dept_copy_function()
        assert rho("t1") == "s1" and rho("t2") == "s1"
        assert rho("t3") == "s3" and rho("t4") == "s4"

    def test_specifications_are_consistent(self):
        assert is_consistent(company.company_specification())
        assert is_consistent(company.company_specification(include_status_semantics=False))
        assert is_consistent(company.manager_specification())
        assert is_consistent(company.company_specification(with_copy_function=False))

    def test_queries_are_sp(self):
        for query in company.paper_queries().values():
            assert classify(query) == "SP"

    def test_expected_answers_table(self):
        assert set(company.EXPECTED_ANSWERS) == {"Q1", "Q2", "Q3", "Q4"}


class TestSyntheticWorkloads:
    def test_generator_is_deterministic(self):
        a = random_specification(SyntheticConfig(seed=4))
        b = random_specification(SyntheticConfig(seed=4))
        assert a.instance("R0").value_set() == b.instance("R0").value_set()

    def test_size_parameters_respected(self):
        config = SyntheticConfig(entities=3, tuples_per_entity=4, attributes=2, relations=2)
        spec = random_specification(config)
        assert len(spec.instance_names()) == 2
        assert len(spec.instance("R0")) == 12
        assert spec.instance("R0").schema.attributes == ("a0", "a1")

    def test_constraint_switch(self):
        with_dcs = random_specification(SyntheticConfig(with_constraints=True, seed=1))
        without = random_specification(SyntheticConfig(with_constraints=False, seed=1))
        assert with_dcs.has_denial_constraints()
        assert not without.has_denial_constraints()

    def test_order_density_zero_and_one(self):
        empty = random_specification(SyntheticConfig(order_density=0.0, with_constraints=False, seed=2))
        full = random_specification(SyntheticConfig(order_density=1.0, with_constraints=False, seed=2))
        assert all(
            order.pair_count() == 0
            for order in empty.instance("R0").orders().values()
        )
        # with density 1 every block is totally ordered
        instance = full.instance("R0")
        for attribute in instance.schema.attributes:
            for eid in instance.entities():
                assert instance.order(attribute).is_total_on(instance.entity_tids(eid))

    def test_initial_orders_are_consistent(self):
        for seed in range(5):
            spec = random_specification(
                SyntheticConfig(order_density=0.7, with_constraints=False, seed=seed)
            )
            assert is_consistent(spec, method="chase")

    def test_chain_copy_specification_has_copy_functions(self):
        spec = chain_copy_specification(relations=3, seed=1)
        assert len(spec.instance_names()) == 3
        assert spec.copy_functions  # at least one chain link materialised

    def test_copy_functions_satisfy_copying_condition(self):
        spec = chain_copy_specification(relations=2, seed=6)
        for cf in spec.copy_functions:
            cf.check_copying_condition(spec.instance(cf.target), spec.instance(cf.source))

    def test_random_sp_query_targets_requested_relation(self):
        spec = chain_copy_specification(relations=2, seed=0)
        query = random_sp_query(spec, relation="R1", seed=0)
        assert query.relation == "R1"
        assert classify(query) == "SP"

    def test_describe_mentions_parameters(self):
        config = SyntheticConfig(entities=5, tuples_per_entity=2)
        assert "entities=5" in config.describe()
