"""Unit tests for the footprint-scoped ``"delta"`` invalidation fast path.

The property sweeps in ``tests/property/test_session_mutation.py`` prove the
fast path answers *identically* to a cold rebuild over long random streams;
the tests here pin down the *mechanism* on hand-built specifications:

* a mutation in copy-graph component A leaves component B's answer-memo
  entries and current-database enumerators untouched (object identity, not
  just value equality);
* the answer memo and engine table key queries *structurally*, so two
  independently-built but value-equal queries share one entry (the
  ``id(query)`` regression class reprolint R2 now flags);
* retained answers never survive a consistency flip — the first ask after a
  mutation that empties ``Mod(S)`` raises, it does not replay a stale memo;
* ``ExtensionSearchSpace.extend_with_tuples`` lands tuple deltas on the warm
  solver (and refuses stale calls), keeps the sequential counter usable, and
  round-trips through pickle;
* ``mutation_stats()`` exposes the counters benchmarks assert on.
"""

import copy
import pickle

import pytest

from repro.core.denial import AttrRef, Comparison, CurrencyAtom, DenialConstraint
from repro.core.instance import TemporalInstance
from repro.core.schema import RelationSchema
from repro.core.specification import Specification
from repro.core.tuples import RelationTuple
from repro.exceptions import InconsistentSpecificationError, SpecificationError
from repro.preservation.ecp import currency_preserving_extension_exists, maximal_extension
from repro.preservation.sat_extensions import ExtensionSearchSpace
from repro.query.ast import SPQuery
from repro.session.session import ReasoningSession
from repro.workloads import company


# --------------------------------------------------------------------------- #
# Hand-built specifications
# --------------------------------------------------------------------------- #
def _two_component_spec():
    """``R`` and ``S``, no copy functions: two copy-graph components, so a
    mutation in one can only reach the other through the (guarded) global
    consistency flip."""
    instances = {}
    for name in ("R", "S"):
        schema = RelationSchema(name, ("A", "B"))
        prefix = name.lower()
        instances[name] = TemporalInstance.from_rows(
            schema,
            {
                f"{prefix}1": {"EID": "e1", "A": 1, "B": 10},
                f"{prefix}2": {"EID": "e1", "A": 2, "B": 20},
            },
        )
    return Specification(instances)


def _query(specification, relation):
    return SPQuery(
        relation,
        specification.instance(relation).schema,
        ["A"],
        name=f"Q_{relation}",
    )


def _up_down_constraints(schema):
    """The pair of constraints that orders two same-entity tuples both ways
    on ``A`` — any entity with two distinct ``A`` values becomes unsatisfiable."""
    return [
        DenialConstraint(
            schema,
            ("s", "t"),
            [Comparison(AttrRef("s", "A"), op, AttrRef("t", "A"))],
            CurrencyAtom("t", "A", "s"),
            name=name,
        )
        for op, name in ((">", "up"), ("<", "down"))
    ]


# --------------------------------------------------------------------------- #
# Footprint-scoped memo and enumerator eviction
# --------------------------------------------------------------------------- #
class TestScopedEviction:
    def test_disjoint_component_memo_survives(self):
        session = ReasoningSession(_two_component_spec())
        q_r = _query(session.specification, "R")
        q_s = _query(session.specification, "S")
        answers_s = session.certain_answers(q_s)
        session.certain_answers(q_r)
        retained_value = session._answer_memo[(q_s, "sp")]

        session.add_tuple("R", "r3", {"EID": "e2", "A": 3, "B": 30})

        assert (q_r, "sp") not in session._answer_memo
        assert session._answer_memo[(q_s, "sp")] is retained_value
        assert session.certain_answers(q_s) == answers_s
        stats = session.mutation_stats()
        assert stats["memo_retained"] >= 1
        assert stats["memo_evicted"] >= 1

    def test_disjoint_component_enumerator_survives(self):
        session = ReasoningSession(_two_component_spec())
        q_s = _query(session.specification, "S")
        session.certain_answers(q_s, method="candidates")
        enumerator = session._enumerators[frozenset({"S"})]

        session.add_tuple("R", "r3", {"EID": "e2", "A": 3, "B": 30})

        assert session._enumerators[frozenset({"S"})] is enumerator
        assert session.mutation_stats()["enumerators_retained"] >= 1

    def test_same_component_memo_is_evicted(self):
        session = ReasoningSession(_two_component_spec())
        q_s = _query(session.specification, "S")
        before = session.certain_answers(q_s)

        session.add_tuple("S", "s3", {"EID": "e1", "A": 7, "B": 70})

        assert (q_s, "sp") not in session._answer_memo
        after = session.certain_answers(q_s)
        assert before != after or before == after  # recomputed, not replayed
        assert session.mutation_stats()["memo_evicted"] >= 1

    def test_add_order_in_one_component_keeps_the_other(self):
        session = ReasoningSession(_two_component_spec())
        q_s = _query(session.specification, "S")
        session.certain_answers(q_s)

        session.add_order("R", "A", "r1", "r2")

        assert (q_s, "sp") in session._answer_memo
        stats = session.mutation_stats()
        assert stats["memo_retained"] >= 1
        assert stats["footprint_relations"] >= 1

    def test_coarse_mode_clears_everything(self):
        session = ReasoningSession(_two_component_spec(), invalidation="coarse")
        q_s = _query(session.specification, "S")
        answers = session.certain_answers(q_s)

        session.add_tuple("R", "r3", {"EID": "e2", "A": 3, "B": 30})

        assert not session._answer_memo
        assert session.certain_answers(q_s) == answers

    def test_unknown_invalidation_mode_rejected(self):
        with pytest.raises(SpecificationError):
            ReasoningSession(_two_component_spec(), invalidation="lazy")


# --------------------------------------------------------------------------- #
# Structural query keys (the id(query) regression class)
# --------------------------------------------------------------------------- #
class TestStructuralQueryKeys:
    def test_value_equal_queries_share_memo_and_engine(self):
        session = ReasoningSession(_two_component_spec())
        spec = session.specification
        first = _query(spec, "S")
        second = SPQuery("S", spec.instance("S").schema, ["A"], name="rebuilt")
        assert first is not second and first == second

        answers = session.certain_answers(first)
        memo_size = len(session._answer_memo)
        engines = len(session._engines)

        assert session.certain_answers(second) == answers
        assert len(session._answer_memo) == memo_size
        assert len(session._engines) == engines

    def test_memo_survives_snapshot_restore_with_fresh_query_objects(self):
        session = ReasoningSession(_two_component_spec())
        answers = session.certain_answers(_query(session.specification, "S"))
        snapshot = session.snapshot()

        restored = ReasoningSession.restore(snapshot)
        memo_size = len(restored._answer_memo)
        fresh = _query(restored.specification, "S")

        assert restored.certain_answers(fresh) == answers
        assert len(restored._answer_memo) == memo_size  # hit, not a new entry


# --------------------------------------------------------------------------- #
# The consistency flip is never masked by retained state
# --------------------------------------------------------------------------- #
class TestConsistencyFlip:
    def _flip_spec(self):
        r_schema = RelationSchema("R", ("A", "B"))
        s_schema = RelationSchema("S", ("A", "B"))
        instances = {
            "R": TemporalInstance.from_rows(
                r_schema, {"r1": {"EID": "e1", "A": 1, "B": 10}}
            ),
            "S": TemporalInstance.from_rows(
                s_schema,
                {
                    "s1": {"EID": "e1", "A": 1, "B": 10},
                    "s2": {"EID": "e1", "A": 2, "B": 20},
                },
            ),
        }
        return Specification(instances, {"R": _up_down_constraints(r_schema)})

    def test_retained_memo_does_not_mask_inconsistency(self):
        session = ReasoningSession(self._flip_spec())
        q_s = _query(session.specification, "S")
        session.certain_answers(q_s, method="candidates")

        # the second R-tuple for e1 grounds both up/down constraints: Mod(S)
        # is now empty, even though the mutation's footprint is disjoint
        # from S's component
        session.add_tuple("R", "r2", {"EID": "e1", "A": 2, "B": 20})

        with pytest.raises(InconsistentSpecificationError):
            session.certain_answers(q_s, method="candidates")
        stats = session.mutation_stats()
        assert stats["consistency_rechecks"] >= 1

    def test_recheck_clears_all_retained_state(self):
        session = ReasoningSession(self._flip_spec())
        q_s = _query(session.specification, "S")
        session.certain_answers(q_s, method="candidates")
        session.add_tuple("R", "r2", {"EID": "e1", "A": 2, "B": 20})
        with pytest.raises(InconsistentSpecificationError):
            session.certain_answers(q_s, method="candidates")
        # the pre-flip answer set is gone; only the memoised inconsistency
        # verdict (None) may remain
        assert all(value is None for value in session._answer_memo.values())


# --------------------------------------------------------------------------- #
# Space tuple deltas on the warm solver
# --------------------------------------------------------------------------- #
class TestSpaceTupleDelta:
    def _duplicate_row(self, specification, instance_name, tid):
        instance = specification.instance(instance_name)
        donor = instance.tuples()[0]
        tup = RelationTuple(
            instance.schema,
            tid,
            {**donor.values(), instance.schema.eid: donor.eid},
        )
        instance.add(tup)
        return tup

    def test_target_tuple_delta_lands_and_answers_agree(self, manager_spec):
        q2 = company.paper_queries()["Q2"]
        warm = ExtensionSearchSpace(manager_spec)
        currency_preserving_extension_exists(q2, manager_spec, space=warm)

        self._duplicate_row(manager_spec, "Emp", "t_fresh")
        assert warm.extend_with_tuples("Emp", ("t_fresh",)) is True

        cold_spec = company.manager_specification()
        self._duplicate_row(cold_spec, "Emp", "t_fresh")
        cold = ExtensionSearchSpace(cold_spec)
        assert currency_preserving_extension_exists(
            q2, manager_spec, space=warm
        ) == currency_preserving_extension_exists(q2, cold_spec, space=cold)
        assert (
            maximal_extension(manager_spec, space=warm).size_increase
            == maximal_extension(cold_spec, space=cold).size_increase
        )

    def test_stale_tid_falls_back_to_rebuild(self, manager_spec):
        space = ExtensionSearchSpace(manager_spec)
        encoded = next(iter(manager_spec.instance("Emp").tids()))
        assert space.extend_with_tuples("Emp", (encoded,)) is False

    def test_counter_stays_usable_across_extension(self, manager_spec):
        space = ExtensionSearchSpace(manager_spec)
        before = space.bound_assumption(0)  # builds the sequential counter
        assert before is not None

        self._duplicate_row(manager_spec, "Emp", "t_fresh")
        assert space.extend_with_tuples("Emp", ("t_fresh",)) is True

        after = space.bound_assumption(0)  # topped up lazily, not rebuilt
        assert after is not None

    def test_pickle_roundtrip_after_extension(self, manager_spec):
        space = ExtensionSearchSpace(manager_spec)
        space.bound_assumption(0)
        self._duplicate_row(manager_spec, "Emp", "t_fresh")
        assert space.extend_with_tuples("Emp", ("t_fresh",)) is True

        restored = pickle.loads(pickle.dumps(space))
        assert restored.stats()["candidates"] == space.stats()["candidates"]
        assert restored.bound_assumption(0) is not None


# --------------------------------------------------------------------------- #
# mutation_stats() counters
# --------------------------------------------------------------------------- #
class TestMutationStats:
    EXPECTED = {
        "memo_evicted",
        "memo_retained",
        "chase_extended",
        "chase_rebuilt",
        "space_extended",
        "space_rebuilt",
        "encoder_extended",
        "encoder_rebuilt",
        "enumerators_retained",
        "enumerators_dropped",
        "consistency_rechecks",
        "footprint_relations",
        "footprint_blocks",
    }

    def test_counter_vocabulary(self):
        session = ReasoningSession(_two_component_spec())
        stats = session.mutation_stats()
        assert set(stats) == self.EXPECTED
        assert all(isinstance(value, int) for value in stats.values())

    def test_stats_are_a_copy(self):
        session = ReasoningSession(_two_component_spec())
        session.mutation_stats()["memo_evicted"] = 999
        assert session.mutation_stats()["memo_evicted"] != 999

    def test_delta_stream_takes_the_fast_path(self):
        session = ReasoningSession(_two_component_spec())
        q_s = _query(session.specification, "S")
        session.certain_answers(q_s)
        session.consistent()
        session.add_tuple("R", "r3", {"EID": "e2", "A": 3, "B": 30})
        session.add_order("R", "A", "r1", "r2")
        session.add_tuples("S", [("s3", {"EID": "e2", "A": 5, "B": 50})])
        stats = session.mutation_stats()
        assert stats["space_rebuilt"] == 0
        assert stats["footprint_blocks"] >= 3
