"""Tests for the batch driver: grouping by structural spec equality, serial
vs parallel result equality, per-request error isolation."""

from __future__ import annotations

import pytest

from repro.exceptions import SpecificationError
from repro.reasoning.ccqa import certain_current_answers
from repro.reasoning.cps import is_consistent
from repro.session import BatchDriver, ProblemRequest
from repro.session.batch import _SessionPool
from repro.workloads import company
from repro.workloads.synthetic import (
    SyntheticConfig,
    preservation_workload,
    random_specification,
    random_sp_query,
)


def _request_stream():
    """A small mixed stream: two structurally-equal copies of one spec, one
    distinct spec, requests over all eight problems."""
    spec_a = random_specification(SyntheticConfig(seed=1, with_constraints=True))
    spec_a_again = random_specification(SyntheticConfig(seed=1, with_constraints=True))
    query_a = random_sp_query(spec_a, seed=1)
    spec_b, query_b = preservation_workload(
        candidates=2, conflict_groups=1, spoiler=True, seed=2
    )
    spec_c = random_specification(SyntheticConfig(seed=5, with_constraints=False))
    query_c = random_sp_query(spec_c, seed=5)
    name = spec_a.instance_names()[0]
    block = spec_a.instance(name).entity_tids("e0")
    order = {spec_a.instance(name).schema.attributes[0]: [(block[0], block[1])]}
    return [
        (spec_a, ProblemRequest("cps")),
        (spec_a_again, ProblemRequest("ccqa", query=query_a)),
        (spec_a, ProblemRequest("cop", args=(name, order))),
        (spec_a_again, ProblemRequest("dcip")),
        (spec_b, ProblemRequest("cpp", query=query_b)),
        (spec_b, ProblemRequest("ecp", query=query_b)),
        (spec_b, ProblemRequest("bcp", query=query_b, args=(1,))),
        (spec_c, ProblemRequest("sp", query=query_c)),
    ]


class TestGroupingAndSerial:
    def test_structurally_equal_specs_share_one_session(self):
        requests = _request_stream()
        driver = BatchDriver(serial=True)
        groups = driver._group(requests)
        # spec_a and spec_a_again are value-identical -> one group; spec_b
        # and spec_c are their own groups
        assert len(groups) == 3
        assert [len(items) for _spec, items in groups] == [4, 3, 1]

    def test_serial_results_match_direct_module_calls(self):
        requests = _request_stream()
        results = BatchDriver(serial=True).run(requests)
        assert [r.index for r in results] == list(range(len(requests)))
        assert all(r.ok for r in results), [r.error for r in results]
        spec_a, _ = requests[0]
        query_a = requests[1][1].query
        assert results[0].value == is_consistent(spec_a.copy())
        assert results[1].value == certain_current_answers(query_a, spec_a.copy())
        assert results[4].value in (True, False)
        assert results[5].value is True  # ECP on a consistent spec

    def test_errors_are_isolated_per_request(self):
        spec = random_specification(SyntheticConfig(seed=3))
        requests = [
            (spec, ProblemRequest("cps")),
            (spec, ProblemRequest("cps", kwargs={"method": "bogus"})),
            (spec, ProblemRequest("cps")),
        ]
        results = BatchDriver(serial=True).run(requests)
        assert results[0].ok and results[2].ok
        assert not results[1].ok and "SpecificationError" in results[1].error

    def test_unknown_problem_rejected_at_request_construction(self):
        with pytest.raises(SpecificationError):
            ProblemRequest("nope")

    def test_session_pool_interns_structurally(self):
        pool = _SessionPool(capacity=2)
        spec = company.company_specification()
        rebuilt = company.company_specification()
        assert pool.session_for(spec) is pool.session_for(rebuilt)
        assert pool.hits == 1 and pool.misses == 1
        other = random_specification(SyntheticConfig(seed=4))
        assert pool.session_for(other) is not pool.session_for(spec)


class TestCrossBatchReuse:
    def test_serial_driver_keeps_sessions_across_runs(self):
        """The driver's in-process pool persists between run() calls, so a
        later batch naming an already-served spec reuses the warm session."""
        spec = random_specification(SyntheticConfig(seed=6, with_constraints=True))
        rebuilt = random_specification(SyntheticConfig(seed=6, with_constraints=True))
        driver = BatchDriver(serial=True)
        first = driver.run([(spec, ProblemRequest("cps"))])
        second = driver.run([(rebuilt, ProblemRequest("cps"))])
        assert first[0].value == second[0].value
        assert driver._local_pool.hits == 1 and driver._local_pool.misses == 1

    def test_ecp_wrapper_rejects_a_space_for_another_spec(self):
        from repro.preservation.ecp import currency_preserving_extension_exists
        from repro.preservation.sat_extensions import ExtensionSearchSpace

        spec_a, query = preservation_workload(candidates=2, conflict_groups=1, seed=7)
        spec_b, _ = preservation_workload(candidates=3, conflict_groups=1, seed=8)
        space = ExtensionSearchSpace(spec_b)
        with pytest.raises(SpecificationError):
            currency_preserving_extension_exists(query, spec_a, space=space)
        assert currency_preserving_extension_exists(query, spec_b, space=space)


class TestParallel:
    def test_parallel_matches_serial(self):
        requests = _request_stream()
        serial = BatchDriver(serial=True).run(requests)
        with BatchDriver(processes=2) as driver:
            parallel = driver.run(requests)
        assert [(r.index, r.problem, r.value, r.error) for r in serial] == [
            (r.index, r.problem, r.value, r.error) for r in parallel
        ]

    def test_worker_pool_persists_across_runs(self):
        """The multiprocessing pool lives on the driver, so workers (and
        their interned sessions) survive between batches."""
        spec_a = random_specification(SyntheticConfig(seed=9, with_constraints=True))
        spec_b = random_specification(SyntheticConfig(seed=10, with_constraints=True))
        stream = [(spec_a, ProblemRequest("cps")), (spec_b, ProblemRequest("cps"))]
        with BatchDriver(processes=2) as driver:
            first = driver.run(stream)
            pool = driver._workers
            assert pool is not None  # a single-group run would stay in-process
            second = driver.run([(spec_a, ProblemRequest("dcip")),
                                 (spec_b, ProblemRequest("dcip"))])
            assert driver._workers is pool  # same worker processes
        assert driver._workers is None  # released on exit
        assert all(r.ok for r in first + second)
