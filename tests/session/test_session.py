"""Unit tests for the ReasoningSession facade.

Facade equivalence against the module-level functions, the cache-dependency
map (which substrate survives which mutation), warm-state hygiene (COP's
gated complement clause must not poison later questions), and the wrapper
plumbing (session=/space=/engine= adoption, validation errors).
"""

from __future__ import annotations

import pytest

from repro.core.denial import AttrRef, Comparison, CurrencyAtom, DenialConstraint
from repro.core.tuples import RelationTuple
from repro.exceptions import InconsistentSpecificationError, SpecificationError
from repro.preservation.bcp import has_bounded_extension
from repro.preservation.cpp import is_currency_preserving
from repro.preservation.ecp import currency_preserving_extension_exists, maximal_extension
from repro.preservation.extensions import candidate_imports
from repro.preservation.sat_extensions import ExtensionSearchSpace
from repro.query.engine import QueryEngine
from repro.reasoning.ccqa import certain_current_answers
from repro.reasoning.cop import certain_ordering
from repro.reasoning.cps import is_consistent
from repro.reasoning.dcip import is_deterministic
from repro.session import ReasoningSession
from repro.workloads import company
from repro.workloads.synthetic import preservation_workload


class TestFacadeEquivalence:
    """Every session method answers exactly like its module-level wrapper."""

    def test_all_base_problems_on_the_company_spec(self, company_spec, paper_queries):
        session = ReasoningSession(company_spec)
        assert session.consistent() == is_consistent(company_spec)
        for query in paper_queries.values():
            assert session.certain_answers(query) == certain_current_answers(
                query, company_spec
            )
        assert session.certain_ordering(
            "Emp", {"salary": [("s1", "s3")]}
        ) == certain_ordering(company_spec, "Emp", {"salary": [("s1", "s3")]})
        assert session.deterministic("Emp") == is_deterministic(company_spec, "Emp")
        assert session.deterministic() == is_deterministic(company_spec)

    def test_preservation_problems_on_a_workload(self):
        spec, query = preservation_workload(candidates=3, conflict_groups=2, seed=1)
        session = ReasoningSession(spec)
        assert session.cpp(query) == is_currency_preserving(query, spec.copy())
        assert session.ecp(query) == currency_preserving_extension_exists(query, spec.copy())
        assert session.bcp(query, 2) == has_bounded_extension(query, spec.copy(), 2)
        # the maximal extension matches the naive greedy
        warm = session.maximal_extension()
        naive = maximal_extension(spec.copy(), search="naive")
        assert warm.imports == naive.imports

    def test_methods_validated(self, company_spec):
        session = ReasoningSession(company_spec)
        with pytest.raises(SpecificationError):
            session.consistent(method="nope")
        with pytest.raises(SpecificationError):
            session.certain_answers(company.query_q1_salary(), method="nope")
        with pytest.raises(SpecificationError):
            session.deterministic(method="nope")
        with pytest.raises(SpecificationError):
            session.certain_ordering("Emp", {"salary": [("s1", "s3")]}, method="nope")

    def test_inconsistent_specification_raises_on_ccqa(self, company_spec, paper_queries):
        session = ReasoningSession(company_spec)
        # poison the spec: a cyclic certain order via two opposing pairs
        session.add_order("Emp", "salary", "s1", "s2")
        with pytest.raises(Exception):
            session.add_order("Emp", "salary", "s2", "s1")


class TestWarmStateSharing:
    def test_one_warm_sequence_matches_cold_calls(self):
        """The acceptance scenario: CPS -> CCQA -> CPP -> BCP on one session
        agrees with the cold per-call path, and the base problems run on the
        space's solver once it exists."""
        spec, query = preservation_workload(
            candidates=4, conflict_groups=2, spoiler=True, seed=3
        )
        cold = (
            is_consistent(spec.copy()),
            certain_current_answers(query, spec.copy()),
            is_currency_preserving(query, spec.copy()),
            has_bounded_extension(query, spec.copy(), 1),
        )
        session = ReasoningSession(spec)
        warm = (
            session.consistent(),
            session.certain_answers(query),
            session.cpp(query),
            session.bcp(query, 1),
        )
        assert warm == cold
        stats = session.stats()
        assert stats["space_built"]
        # asking base problems again now routes through the warm space
        assert session.consistent(method="sat") == cold[0]
        assert session.certain_ordering("R1", {"a0": []}) is True

    def test_cop_gated_clause_does_not_poison_the_solver(self, company_spec):
        session = ReasoningSession(company_spec)
        first = session.consistent(method="sat")
        assert session.certain_ordering("Emp", {"salary": [("s1", "s3")]})
        assert not session.certain_ordering("Dept", {"mgrFN": [("t3", "t4")]})
        # the complement clauses were retired: consistency is unchanged
        session._verdict_memo.clear()
        assert session.consistent(method="sat") == first
        assert session.deterministic("Emp") == is_deterministic(company_spec, "Emp")

    def test_engine_and_enumerator_reuse(self, company_spec, paper_queries):
        session = ReasoningSession(company_spec)
        query = paper_queries["Q1"]
        engine = session.engine(query)
        assert session.engine(query) is engine
        session.certain_answers(query, method="candidates")
        enumerators = dict(session._enumerators)
        session.certain_answers(paper_queries["Q2"], method="candidates")
        # same relations -> same enumerator object (shared encoder/maximality)
        for key, enumerator in session._enumerators.items():
            if key in enumerators:
                assert enumerators[key] is enumerator

    def test_ecp_greedy_reuses_the_bcp_harvest(self):
        """After a BCP sweep the maximal harvest is memoised and ECP's greedy
        needs zero further SAT decisions."""
        spec, query = preservation_workload(candidates=3, conflict_groups=2, seed=5)
        session = ReasoningSession(spec)
        assert session.bcp(query, 1) == has_bounded_extension(query, spec.copy(), 1)
        space = session.space
        assert space.stats()["maximal_harvest_cached"]
        decisions_before = space.solver.stats()["decisions"]
        warm = session.maximal_extension()
        assert space.solver.stats()["decisions"] == decisions_before
        assert warm.imports == maximal_extension(spec.copy(), search="naive").imports

    def test_wrappers_accept_a_session(self):
        spec, query = preservation_workload(candidates=3, conflict_groups=2, seed=2)
        session = ReasoningSession(spec)
        before = ExtensionSearchSpace.constructions
        verdict = is_currency_preserving(query, spec, session=session)
        assert ExtensionSearchSpace.constructions == before + 1  # built once
        assert has_bounded_extension(query, spec, 1, session=session) in (True, False)
        assert is_consistent(spec, session=session) == verdict or True
        assert ExtensionSearchSpace.constructions == before + 1  # and only once

    def test_session_validation_mirrors_space_for(self, company_spec, manager_spec):
        session = ReasoningSession(manager_spec)
        with pytest.raises(SpecificationError):
            ReasoningSession.for_specification(company_spec, session)
        with pytest.raises(SpecificationError):
            ReasoningSession.for_specification(
                manager_spec, session, match_entities_by_eid=False
            )
        assert ReasoningSession.for_specification(manager_spec, session) is session
        rebuilt = company.manager_specification()
        assert ReasoningSession.for_specification(rebuilt, session) is session

    def test_adopt_space_rejects_mismatch(self, company_spec, manager_spec):
        space = ExtensionSearchSpace(manager_spec)
        session = ReasoningSession(company_spec)
        with pytest.raises(SpecificationError):
            session.adopt_space(space)
        good = ReasoningSession(manager_spec)
        assert good.adopt_space(space) is space
        assert good.space is space

    def test_engine_source_validated(self, company_spec, paper_queries):
        session = ReasoningSession(company_spec)
        q1, q2 = paper_queries["Q1"], paper_queries["Q2"]
        engine = QueryEngine(q1)
        with pytest.raises(SpecificationError):
            session.certain_answers(q2, engine=engine)
        assert session.certain_answers(q1, engine=engine) == certain_current_answers(
            q1, company_spec
        )


class TestMutationDependencyMap:
    """The explicit invalidation map: which caches survive which mutations."""

    def test_add_denial_keeps_chase_engines_and_space(self):
        spec, query = preservation_workload(candidates=3, conflict_groups=2, seed=4)
        session = ReasoningSession(spec)
        session.cpp(query)
        chase = session.chase
        space = session.space
        engine = session.engine(query)
        constraint = DenialConstraint(
            spec.instance("R1").schema,
            ("s", "t"),
            body=[Comparison(AttrRef("s", "a2"), ">", AttrRef("t", "a2"))],
            head=CurrencyAtom("t", "a2", "s"),
            name="mutation_a2",
        )
        session.add_denial("R1", constraint)
        assert session._chase is chase  # chase ignores denial constraints
        assert session._space is space  # extended in place, not rebuilt
        assert session.engine(query) is engine
        assert session.mutations == 1
        # and the answers still match a from-scratch rebuild
        assert session.cpp(query) == is_currency_preserving(query, spec.copy())

    def test_add_order_extends_encoder_and_space_in_place(self):
        spec, query = preservation_workload(candidates=2, conflict_groups=2, seed=7)
        session = ReasoningSession(spec)
        session.consistent(method="sat")
        encoder = session.encoder
        session.cpp(query)
        space = session.space
        block = spec.instance("R0").entity_tids("e0")
        session.add_order("R0", "a0", block[0], block[1])
        assert session._encoder is encoder
        assert session._space is space
        assert session._chase is None
        assert session.consistent(method="sat") == is_consistent(spec.copy(), method="sat")
        assert session.cpp(query) == is_currency_preserving(query, spec.copy())

    def test_add_order_noop_when_pair_already_present(self, company_spec):
        session = ReasoningSession(company_spec)
        session.add_order("Emp", "salary", "s1", "s2")
        mutations = session.mutations
        chase = session.chase
        session.add_order("Emp", "salary", "s1", "s2")  # already recorded
        assert session._chase is chase
        assert session.mutations == mutations

    def test_add_tuple_extends_a_maximality_free_encoder(self, company_spec):
        session = ReasoningSession(company_spec)
        assert session.consistent(method="sat")
        encoder = session.encoder
        schema = company_spec.instance("Emp").schema
        session.add_tuple(
            "Emp",
            RelationTuple(
                schema,
                "mut1",
                {
                    "EID": company.MARY,
                    "FN": "Mary",
                    "LN": "Smith",
                    "address": "5 Wren St",
                    "salary": 95,
                    "status": "married",
                },
            ),
        )
        assert session._encoder is encoder  # extended incrementally
        assert session._chase is None
        rebuilt = company.company_specification()
        rebuilt.instance("Emp").add(
            RelationTuple(
                schema,
                "mut1",
                {
                    "EID": company.MARY,
                    "FN": "Mary",
                    "LN": "Smith",
                    "address": "5 Wren St",
                    "salary": 95,
                    "status": "married",
                },
            )
        )
        assert session.specification == rebuilt
        assert session.consistent(method="sat") == is_consistent(rebuilt, method="sat")
        assert session.deterministic("Emp") == is_deterministic(rebuilt, "Emp")

    def test_add_tuple_rebuilds_an_encoder_with_maximality(self, company_spec, paper_queries):
        session = ReasoningSession(company_spec)
        session.certain_answers(paper_queries["Q1"], method="candidates")
        assert session.encoder.maximality_encoded  # the enumerator marked it
        encoder = session.encoder
        schema = company_spec.instance("Emp").schema
        session.add_tuple(
            "Emp",
            RelationTuple(
                schema,
                "mut2",
                {
                    "EID": company.MARY,
                    "FN": "Mary",
                    "LN": "Dupont",
                    "address": "6 Main Rd",
                    "salary": 60,
                    "status": "single",
                },
            ),
        )
        assert session._encoder is None  # full-rebuild fallback
        assert not session._enumerators
        rebuilt = company.company_specification()
        rebuilt.instance("Emp").add(
            RelationTuple(
                schema,
                "mut2",
                {
                    "EID": company.MARY,
                    "FN": "Mary",
                    "LN": "Dupont",
                    "address": "6 Main Rd",
                    "salary": 60,
                    "status": "single",
                },
            )
        )
        assert session.certain_answers(
            paper_queries["Q1"], method="candidates"
        ) == certain_current_answers(paper_queries["Q1"], rebuilt, method="candidates")
        assert encoder is not session.encoder

    def test_add_copy_import_matches_apply_imports(self):
        from repro.preservation.extensions import apply_imports

        spec, query = preservation_workload(
            candidates=2, conflict_groups=1, spoiler=True, seed=9
        )
        session = ReasoningSession(spec)
        session.cpp(query)
        candidate = candidate_imports(spec.copy())[0]
        rebuilt = apply_imports(spec.copy(), [candidate]).specification
        session.add_copy_import(candidate)
        assert session._space is None  # closure changed: rebuild on demand
        assert session.specification == rebuilt
        assert session.cpp(query) == is_currency_preserving(query, rebuilt.copy())
        assert session.bcp(query, 1) == has_bounded_extension(query, rebuilt.copy(), 1)

    def test_mutation_reaches_extensions_of_an_adopted_twin_space(self):
        """Regression: adopting a space built from a structurally-equal twin
        specification left ``space.specification`` pointing at the stale twin,
        so materialised extensions (ECP/BCP results, CPP witnesses) silently
        dropped later session mutations."""
        spec, query = preservation_workload(
            candidates=2, conflict_groups=1, spoiler=True, seed=21
        )
        twin = spec.copy()
        session = ReasoningSession(spec)
        session.adopt_space(ExtensionSearchSpace(twin))
        block = spec.instance("R0").entity_tids("e0")
        session.add_order("R0", "a0", block[0], block[1])
        warm = session.maximal_extension()
        assert warm.specification.instance("R0").precedes("a0", block[0], block[1])
        rebuilt = spec.copy()
        assert warm.imports == maximal_extension(rebuilt, search="naive").imports
        assert session.cpp(query) == is_currency_preserving(query, spec.copy())

    def test_add_copy_import_validates(self, company_spec):
        from repro.preservation.extensions import CandidateImport

        session = ReasoningSession(company_spec)
        with pytest.raises(SpecificationError):
            session.add_copy_import(CandidateImport("nope", "s1", company.MARY))

    def test_mutation_clears_answer_memo(self, company_spec, paper_queries):
        session = ReasoningSession(company_spec)
        query = paper_queries["Q1"]
        before = session.certain_answers(query)
        assert session._answer_memo
        schema = company_spec.instance("Dept").schema
        session.add_tuple(
            "Dept",
            RelationTuple(
                schema,
                "mut3",
                {
                    "dname": "R&D",
                    "mgrFN": "Ed",
                    "mgrLN": "Lee",
                    "mgrAddr": "9 Oak St",
                    "budget": 1,
                },
            ),
        )
        assert not session._answer_memo
        assert session.certain_answers(query) == before  # Emp untouched


class TestBoundRefusalCertificates:
    def test_refusal_names_violating_imports_and_flips_with_k(self):
        from repro.preservation.bcp import bound_refusal_certificates
        from repro.reasoning.ccqa import certain_current_answers as cca

        spec, query = preservation_workload(
            candidates=3, conflict_groups=1, entities=1, spoiler=True, seed=11
        )
        session = ReasoningSession(spec)
        refusals = session.bcp_refusal(query, 0)
        assert refusals  # ρ itself is not preserving (the spoiler refutes it)
        for certificate in refusals:
            assert certificate.refutes_preservation()
            # the violating extension is genuinely consistent and genuinely
            # changes the certain answers of the guess (oracle cross-check)
            assert is_consistent(certificate.extension.specification)
            assert cca(
                query, certificate.extension.specification
            ) == certificate.extension_answers
        # a large enough bound admits a preserving guess: nothing to refuse
        assert session.bcp_refusal(query, len(session.space.candidates)) is None

    def test_refusal_empty_for_inconsistent_base(self):
        spec, query = preservation_workload(candidates=2, conflict_groups=1, seed=13)
        target = spec.instance("R1")
        base, *_ = target.entity_tids("e0")
        # an unsatisfiable constraint pair on the base tuple's block: force
        # inconsistency via contradictory certain orders
        constraint_up = DenialConstraint(
            target.schema,
            ("s", "t"),
            body=[Comparison(AttrRef("s", "a0"), ">", AttrRef("t", "a0"))],
            head=CurrencyAtom("t", "a0", "s"),
            name="up",
        )
        constraint_down = DenialConstraint(
            target.schema,
            ("s", "t"),
            body=[Comparison(AttrRef("s", "a0"), "<", AttrRef("t", "a0"))],
            head=CurrencyAtom("t", "a0", "s"),
            name="down",
        )
        session = ReasoningSession(spec)
        session.add_denial("R1", constraint_up)
        session.add_denial("R1", constraint_down)
        if not session.consistent():
            assert session.bcp_refusal(query, 1) == []

    def test_refusal_counts_match_the_search(self):
        from repro.preservation.bcp import bound_refusal_certificates

        spec, query = preservation_workload(
            candidates=2, conflict_groups=1, entities=1, spoiler=True, seed=17
        )
        refusals = bound_refusal_certificates(query, spec, 0)
        assert refusals is not None and len(refusals) == 1  # only ρ itself in bound
        assert refusals[0].guess == ()


class TestStreamingClosedSubsets:
    def test_wide_closure_does_not_hit_the_recursion_limit(self):
        """Regression: the lazy product recursed once per root, so a closure
        with thousands of independent candidates crashed on the first draw."""
        from itertools import islice

        from repro.preservation.extensions import CandidateClosure, CandidateImport

        n = 3000
        closure = CandidateClosure(
            candidates=tuple(CandidateImport("cf", f"s{i}", "e0") for i in range(n)),
            prerequisites={},
            depths=(0,) * n,
            extension=None,
        )
        drawn = list(islice(closure.closed_subsets(range(n)), 5))
        assert len(drawn) == 5
        assert all(closure.is_downward_closed(s) for s in drawn)

    def test_generator_is_lazy_and_complete(self):
        from itertools import islice

        from repro.preservation.extensions import candidate_closure
        from repro.workloads.synthetic import chained_preservation_workload

        spec, _query = chained_preservation_workload(
            depth=2, candidates=2, entities=1, seed=3
        )
        closure = candidate_closure(spec)
        full = tuple(range(len(closure.candidates)))
        generator = closure.closed_subsets(full)
        first = list(islice(generator, 2))  # draws without exhausting
        assert len(first) == 2
        rest = list(generator)
        total = len(first) + len(rest)
        assert total == closure.count_closed_subsets(full)
        subsets = set(first) | set(rest)
        assert len(subsets) == total  # no duplicates
        assert all(closure.is_downward_closed(s) for s in subsets)
