"""Chaos tests for the batch driver's supervised parallel mode.

The contract: a worker failure (crash, hang, poisoned result) fails only the
requests of the group it was executing — every other group's results are
exactly what a fault-free serial run produces."""

import pytest

from repro.session import BatchDriver, ProblemRequest
from repro.session.batch import _SessionPool
from repro.testing.faults import Fault, FaultPlan
from repro.workloads import company
from repro.workloads.synthetic import (
    SyntheticConfig,
    preservation_workload,
    random_specification,
)


def _three_group_stream():
    """Three structurally distinct specs → three parallel groups."""
    spec_a = company.company_specification()
    spec_b, query_b = preservation_workload(
        candidates=2, conflict_groups=1, spoiler=True, seed=2
    )
    spec_c = random_specification(SyntheticConfig(seed=5, with_constraints=False))
    return [
        (spec_a, ProblemRequest("cps")),
        (spec_a, ProblemRequest("dcip", args=("Emp",))),
        (spec_b, ProblemRequest("cpp", query=query_b)),
        (spec_b, ProblemRequest("ecp", query=query_b)),
        (spec_c, ProblemRequest("cps")),
    ]


def _serial_oracle(requests):
    return BatchDriver(serial=True).run(requests)


def _by_spec(requests, results, spec):
    return [r for (s, _), r in zip(requests, results) if s is spec]


class TestCrashIsolation:
    def test_killed_group_fails_alone_with_neighbours_exact(self):
        requests = _three_group_stream()
        oracle = _serial_oracle(requests)
        # one worker, killed on its first group (generation 0 only): the
        # first group's requests fail, the respawned worker answers the rest
        plan = FaultPlan.of(
            Fault("batch.group", "kill", after=0, times=1, generation=0)
        )
        with BatchDriver(processes=1, fault_plan=plan) as driver:
            results = driver.run(requests)
            respawns = driver._workers.stats()["respawns"]
        assert respawns == 1
        # group 0 (the company spec, requests 0-1) died with the worker
        for result in results[:2]:
            assert not result.ok
            assert result.failure is not None
            assert result.failure.kind == "WorkerCrashed"
            assert result.failure.retryable
        # groups 1 and 2 match the serial oracle exactly
        for result, truth in zip(results[2:], oracle[2:]):
            assert result.ok
            assert (result.index, result.problem, result.value) == (
                truth.index,
                truth.problem,
                truth.value,
            )

    def test_error_string_property_stays_compatible(self):
        plan = FaultPlan.of(
            Fault("batch.group", "kill", after=0, times=1, generation=0)
        )
        with BatchDriver(processes=1, fault_plan=plan) as driver:
            results = driver.run(_three_group_stream())
        failed = [r for r in results if not r.ok]
        assert failed
        # .error renders the structured record in the historical repr style
        assert failed[0].error.startswith("WorkerCrashed(")
        ok = [r for r in results if r.ok]
        assert ok and all(r.error is None for r in ok)

    def test_failure_records_survive_pickling(self):
        import pickle

        plan = FaultPlan.of(
            Fault("batch.group", "kill", after=0, times=1, generation=0)
        )
        with BatchDriver(processes=1, fault_plan=plan) as driver:
            results = driver.run(_three_group_stream())
        clone = pickle.loads(pickle.dumps(results))
        assert [r.ok for r in clone] == [r.ok for r in results]
        failed = next(r for r in clone if not r.ok)
        assert failed.failure.kind == "WorkerCrashed"


class TestHangsAndPoison:
    def test_hung_group_is_killed_at_the_group_timeout(self):
        requests = _three_group_stream()
        oracle = _serial_oracle(requests)
        # two workers, each sleeping on the *second* group it executes: the
        # first two groups complete, the third hangs whichever worker it
        # lands on and is killed at group_timeout + hang grace
        plan = FaultPlan.of(
            Fault("batch.group", "sleep", seconds=30.0, after=1, times=1)
        )
        with BatchDriver(processes=2, fault_plan=plan, group_timeout=0.4) as driver:
            results = driver.run(requests)
        for result, truth in zip(results[:4], oracle[:4]):
            assert result.ok, result.error
            assert result.value == truth.value
        hung = results[4]
        assert not hung.ok
        assert hung.failure.kind == "DeadlineExceeded"

    def test_poisoned_group_result_is_a_structured_failure(self):
        requests = _three_group_stream()
        oracle = _serial_oracle(requests)
        plan = FaultPlan.of(Fault("worker.result", "poison", after=0, times=1))
        with BatchDriver(processes=1, fault_plan=plan) as driver:
            results = driver.run(requests)
        for result in results[:2]:
            assert not result.ok
            assert result.failure.exception == "TypeError"
            assert "unpicklable" in result.failure.message
        for result, truth in zip(results[2:], oracle[2:]):
            assert result.ok and result.value == truth.value

    def test_transient_error_is_structured_and_marked_retryable(self):
        requests = _three_group_stream()
        plan = FaultPlan.of(
            Fault("worker.execute", "raise", after=0, times=1,
                  message="transient blip")
        )
        with BatchDriver(processes=1, fault_plan=plan) as driver:
            results = driver.run(requests)
        failed = [r for r in results if not r.ok]
        assert failed
        assert failed[0].failure.exception == "InjectedFault"
        assert failed[0].failure.retryable
        assert failed[0].failure.message == "transient blip"


class TestPoolResilience:
    def test_driver_replaces_an_externally_broken_pool(self):
        requests = _three_group_stream()
        oracle = _serial_oracle(requests)
        with BatchDriver(processes=1) as driver:
            first = driver.run(requests)
            broken = driver._workers
            broken.close()  # simulate the pool dying out from under the driver
            assert not broken.alive
            second = driver.run(requests)
            assert driver._workers is not broken
        for results in (first, second):
            for result, truth in zip(results, oracle):
                assert result.ok
                assert result.value == truth.value


class TestSessionPoolLRU:
    def _spec(self, seed):
        return random_specification(SyntheticConfig(seed=seed, with_constraints=False))

    def test_hit_promotes_and_eviction_drops_least_recent(self):
        pool = _SessionPool(capacity=2)
        spec_a, spec_b, spec_c = self._spec(1), self._spec(2), self._spec(3)
        session_a = pool.session_for(spec_a)
        pool.session_for(spec_b)
        # touching A promotes it to most-recently-used ...
        assert pool.session_for(spec_a) is session_a
        # ... so inserting C evicts B, not A
        pool.session_for(spec_c)
        assert pool.evictions == 1
        assert pool.session_for(spec_a) is session_a
        # B is cold again: re-asking builds a fresh session (a miss)
        misses_before = pool.misses
        pool.session_for(spec_b)
        assert pool.misses == misses_before + 1

    def test_stats_counters(self):
        pool = _SessionPool(capacity=2)
        spec_a, spec_b, spec_c = self._spec(1), self._spec(2), self._spec(3)
        pool.session_for(spec_a)
        pool.session_for(spec_a)
        pool.session_for(spec_b)
        pool.session_for(spec_c)
        stats = pool.stats()
        assert stats == {
            "hits": 1,
            "misses": 3,
            "evictions": 1,
            "sessions": 2,
            "capacity": 2,
            "restores": 0,
        }
