"""Unit tests for warm-state snapshot/restore and the mutation batching.

Covers the snapshot value itself (capture, bytes round-trip, restore, the
zero-re-solving claim), the specification fingerprint (structural twins agree,
derived caches don't perturb it), the on-disk :class:`SnapshotStore`
(atomicity, corrupt-entry recovery), the ``add_tuple`` argument-validation
regressions, and ``add_tuples`` batch semantics.  Restore-in-a-subprocess
lives here too — the property sweep exercises the same path in bulk.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle

import pytest

from repro.core.tuples import RelationTuple
from repro.exceptions import SpecificationError
from repro.session import (
    BatchDriver,
    ReasoningSession,
    SessionSnapshot,
    SnapshotStore,
    restore_bytes,
    snapshot_bytes,
    specification_fingerprint,
)
from repro.session.batch import ProblemRequest
from repro.workloads import company
from repro.workloads.synthetic import preservation_workload

ORDER = {"salary": [("s1", "s3")]}


def _mary_tuple(schema, tid="mut1", salary=95):
    return RelationTuple(
        schema,
        tid,
        {
            "EID": company.MARY,
            "FN": "Mary",
            "LN": "Smith",
            "address": "5 Wren St",
            "salary": salary,
            "status": "married",
        },
    )


def _warm_company_session(paper_queries):
    session = ReasoningSession(company.company_specification())
    session.consistent(method="sat")
    session.certain_answers(paper_queries["Q1"])
    session.certain_ordering("Emp", ORDER)
    session.deterministic("Emp")
    return session


# --------------------------------------------------------------------------- #
# add_tuple argument validation (regressions)
# --------------------------------------------------------------------------- #
class TestAddTupleValidation:
    def test_prebuilt_tuple_with_values_mapping_is_rejected(self, company_spec):
        # regression: the values used to be silently ignored
        session = ReasoningSession(company_spec)
        schema = company_spec.instance("Emp").schema
        before = session.mutations
        with pytest.raises(ValueError, match="both a pre-built RelationTuple"):
            session.add_tuple("Emp", _mary_tuple(schema), {"salary": 10})
        assert session.mutations == before
        assert not company_spec.instance("Emp").has_tid("mut1")

    def test_foreign_schema_tuple_is_rejected(self, company_spec, pair_schema):
        # regression: the instance layer compares schema *names* only, so a
        # structurally different schema used to slip straight into the chase
        session = ReasoningSession(company_spec)
        alien = RelationTuple(pair_schema, "mut1", {"EID": "e1", "A": 1, "B": 2})
        before = session.mutations
        with pytest.raises(SpecificationError, match="different schema"):
            session.add_tuple("Emp", alien)
        assert session.mutations == before
        assert not company_spec.instance("Emp").has_tid("mut1")

    def test_valid_prebuilt_tuple_still_lands(self, company_spec):
        session = ReasoningSession(company_spec)
        schema = company_spec.instance("Emp").schema
        session.add_tuple("Emp", _mary_tuple(schema))
        assert company_spec.instance("Emp").has_tid("mut1")


# --------------------------------------------------------------------------- #
# add_tuples: one delta pass, all-or-nothing validation
# --------------------------------------------------------------------------- #
class TestAddTuplesBatch:
    def test_batch_equals_sequential(self, paper_queries):
        batched = _warm_company_session(paper_queries)
        sequential = _warm_company_session(paper_queries)
        schema = batched.specification.instance("Emp").schema
        tuples = [
            _mary_tuple(schema, "mut1", salary=95),
            ("mut2", {
                "EID": company.BOB,
                "FN": "Bob",
                "LN": "Jones",
                "address": "9 Elm St",
                "salary": 61,
                "status": "single",
            }),
        ]
        batched.add_tuples("Emp", tuples)
        for item in tuples:
            if isinstance(item, RelationTuple):
                sequential.add_tuple("Emp", item)
            else:
                sequential.add_tuple("Emp", item[0], item[1])
        assert batched.specification == sequential.specification
        assert batched.consistent(method="sat") == sequential.consistent(method="sat")
        assert batched.deterministic("Emp") == sequential.deterministic("Emp")
        assert batched.certain_answers(
            paper_queries["Q1"]
        ) == sequential.certain_answers(paper_queries["Q1"])

    def test_batch_pays_one_invalidation_pass(self, company_spec):
        session = ReasoningSession(company_spec)
        session.consistent(method="sat")  # warm a maximality-free encoder
        schema = company_spec.instance("Emp").schema
        encoder = session.encoder
        before = session.mutations
        session.add_tuples(
            "Emp", [_mary_tuple(schema, "mut1"), _mary_tuple(schema, "mut2")]
        )
        assert session.mutations == before + 1  # one clear, not one per tuple
        assert session._encoder is encoder  # extended in place, not rebuilt

    def test_bad_element_mutates_nothing(self, company_spec):
        session = ReasoningSession(company_spec)
        schema = company_spec.instance("Emp").schema
        instance = company_spec.instance("Emp")
        before_tids = list(instance.tids())
        with pytest.raises(SpecificationError, match="duplicate tuple id"):
            session.add_tuples(
                "Emp", [_mary_tuple(schema, "mut1"), _mary_tuple(schema, "mut1")]
            )
        with pytest.raises(SpecificationError, match="duplicate tuple id"):
            # collides with an existing tid
            session.add_tuples("Emp", [_mary_tuple(schema, "s1")])
        assert list(instance.tids()) == before_tids

    def test_empty_batch_is_a_noop(self, company_spec):
        session = ReasoningSession(company_spec)
        before = session.mutations
        session.add_tuples("Emp", [])
        assert session.mutations == before


# --------------------------------------------------------------------------- #
# Snapshot capture / restore
# --------------------------------------------------------------------------- #
class TestSnapshotRestore:
    def test_restored_session_answers_like_the_donor(self, paper_queries):
        donor = _warm_company_session(paper_queries)
        payload = donor.snapshot().to_bytes()
        restored = ReasoningSession.restore(SessionSnapshot.from_bytes(payload))
        assert restored.consistent(method="sat") == donor.consistent(method="sat")
        assert restored.certain_answers(paper_queries["Q1"]) == donor.certain_answers(
            paper_queries["Q1"]
        )
        assert restored.certain_ordering("Emp", ORDER) == donor.certain_ordering(
            "Emp", ORDER
        )
        assert restored.deterministic("Emp") == donor.deterministic("Emp")
        assert restored.mutations == donor.mutations

    def test_restore_carries_the_warm_substrate(self, paper_queries):
        donor = _warm_company_session(paper_queries)
        restored = restore_bytes(snapshot_bytes(donor))
        # the earned caches crossed the boundary: nothing needs rebuilding
        assert restored._encoder is not None
        assert restored._chase is not None
        assert restored._answer_memo
        # and the restored space/encoder alias the restored specification —
        # the single-pickle-pass aliasing contract
        assert restored._encoder.specification is restored.specification

    def test_restored_session_stays_mutable_and_equivalent(self, paper_queries):
        donor = _warm_company_session(paper_queries)
        restored = restore_bytes(snapshot_bytes(donor))
        fresh = ReasoningSession(company.company_specification())
        for session in (restored, fresh):
            session.add_order("Emp", "salary", "s1", "s3")
        assert restored.certain_ordering("Emp", ORDER) == fresh.certain_ordering(
            "Emp", ORDER
        )
        assert restored.consistent() == fresh.consistent()
        # the donor was left untouched by snapshot() (detach=True default)
        assert not donor.specification.instance("Emp").order("salary").precedes(
            "s1", "s3"
        ) or donor.specification == restored.specification

    def test_snapshot_of_a_preservation_workload(self):
        spec, query = preservation_workload(candidates=3, conflict_groups=2, seed=5)
        donor = ReasoningSession(spec)
        expected = (donor.cpp(query), donor.ecp(query), donor.bcp(query, 2))
        restored = restore_bytes(snapshot_bytes(donor))
        assert (
            restored.cpp(query),
            restored.ecp(query),
            restored.bcp(query, 2),
        ) == expected

    def test_from_bytes_rejects_foreign_payloads(self):
        with pytest.raises(SpecificationError, match="SessionSnapshot"):
            SessionSnapshot.from_bytes(pickle.dumps({"not": "a snapshot"}))


def _subprocess_restore(payload, queue):
    session = restore_bytes(payload)
    queue.put(
        (
            session.consistent(method="sat"),
            session.certain_ordering("Emp", ORDER),
            session.deterministic("Emp"),
        )
    )


class TestSubprocessRestore:
    def test_snapshot_restores_in_a_spawned_process(self, paper_queries):
        donor = _warm_company_session(paper_queries)
        expected = (
            donor.consistent(method="sat"),
            donor.certain_ordering("Emp", ORDER),
            donor.deterministic("Emp"),
        )
        context = multiprocessing.get_context("spawn")
        queue = context.Queue()
        process = context.Process(
            target=_subprocess_restore, args=(snapshot_bytes(donor), queue)
        )
        process.start()
        try:
            assert queue.get(timeout=60) == expected
        finally:
            process.join(timeout=10)


# --------------------------------------------------------------------------- #
# Specification fingerprints
# --------------------------------------------------------------------------- #
class TestFingerprint:
    def test_structural_twins_agree(self):
        a = specification_fingerprint(company.company_specification())
        b = specification_fingerprint(company.company_specification())
        assert a == b

    def test_copy_agrees_with_original(self, company_spec):
        assert specification_fingerprint(company_spec) == specification_fingerprint(
            company_spec.copy()
        )

    def test_mutation_changes_the_fingerprint(self, company_spec):
        before = specification_fingerprint(company_spec)
        company_spec.instance("Emp").add_order("salary", "s1", "s3")
        assert specification_fingerprint(company_spec) != before

    def test_lazy_caches_do_not_perturb_the_key(self, company_spec):
        twin = company.company_specification()
        # populate derived row caches on one side only
        for name in company_spec.instance_names():
            company_spec.instance(name).rows()
        assert specification_fingerprint(company_spec) == specification_fingerprint(
            twin
        )


# --------------------------------------------------------------------------- #
# On-disk store
# --------------------------------------------------------------------------- #
class TestSnapshotStore:
    def test_store_and_load_session(self, tmp_path, paper_queries):
        store = SnapshotStore(str(tmp_path))
        donor = _warm_company_session(paper_queries)
        store.store_session(donor)
        twin = company.company_specification()
        restored = store.load_session(twin)
        assert restored is not None
        assert restored.certain_answers(paper_queries["Q1"]) == donor.certain_answers(
            paper_queries["Q1"]
        )
        assert store.stats()["entries"] == 1
        assert store.stats()["hits"] == 1

    def test_missing_entry_is_a_miss(self, tmp_path, company_spec):
        store = SnapshotStore(str(tmp_path))
        assert store.load_session(company_spec) is None
        assert store.stats()["misses"] == 1

    def test_corrupt_entry_is_dropped_as_a_miss(self, tmp_path, company_spec):
        store = SnapshotStore(str(tmp_path))
        fingerprint = specification_fingerprint(company_spec)
        store.store(fingerprint, b"not a pickle")
        assert store.load_session(company_spec) is None
        assert store.entries() == []  # the torn file was unlinked

    def test_writes_leave_no_temp_droppings(self, tmp_path, paper_queries):
        store = SnapshotStore(str(tmp_path))
        store.store_session(_warm_company_session(paper_queries))
        leftovers = [n for n in os.listdir(str(tmp_path)) if n.endswith(".tmp")]
        assert leftovers == []


# --------------------------------------------------------------------------- #
# Batch driver snapshot interning
# --------------------------------------------------------------------------- #
class TestBatchSnapshotShipping:
    def test_parallel_groups_ship_and_restore_snapshots(self):
        spec = company.company_specification()
        queries = company.paper_queries()
        requests = [
            (spec, ProblemRequest("cps")),
            (spec, ProblemRequest("ccqa", query=queries["Q1"])),
        ]
        serial = BatchDriver(serial=True)
        expected = [r.value for r in serial.run(requests)]
        pw, query = preservation_workload(candidates=2, conflict_groups=1, seed=2)
        requests.append((pw, ProblemRequest("cpp", query=query)))
        expected.append(serial.run([(pw, ProblemRequest("cpp", query=query))])[0].value)
        with BatchDriver(processes=2) as driver:
            first = driver.run(requests)
            assert [r.value for r in first] == expected
            assert driver.snapshots_captured == 2  # one per group
            # dropping the workers forces restores on the next batch
            driver.close()
            second = driver.run(requests)
            assert [r.value for r in second] == expected
            assert driver.snapshots_shipped >= 2
