"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.instance import TemporalInstance
from repro.core.partial_order import PartialOrder
from repro.core.schema import RelationSchema
from repro.core.specification import Specification
from repro.core.tuples import RelationTuple
from repro.exceptions import CycleError
from repro.query.ast import And, Compare, Constant, Exists, Not, Query, RelationAtom, SPQuery, Var
from repro.query.evaluator import evaluate, evaluate_naive
from repro.reasoning.ccqa import certain_current_answers
from repro.reasoning.chase import chase_certain_orders
from repro.reasoning.cps import is_consistent
from repro.solvers.cnf import CNF
from repro.solvers.sat import iterate_models, solve, solve_naive

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
elements = st.integers(min_value=0, max_value=6)
pairs = st.lists(st.tuples(elements, elements).filter(lambda p: p[0] != p[1]), max_size=12)


def build_order(pair_list):
    """Insert pairs, skipping those that would create a cycle."""
    order = PartialOrder()
    for lower, upper in pair_list:
        try:
            order.add(lower, upper)
        except CycleError:
            pass
    return order


clause_literals = st.lists(
    st.tuples(st.integers(min_value=1, max_value=5), st.booleans()), min_size=1, max_size=4
)
cnf_clauses = st.lists(clause_literals, min_size=1, max_size=12)


# --------------------------------------------------------------------------- #
# Partial-order invariants
# --------------------------------------------------------------------------- #
class TestPartialOrderProperties:
    @given(pairs)
    @settings(max_examples=60, deadline=None)
    def test_transitivity_and_asymmetry(self, pair_list):
        order = build_order(pair_list)
        for a, b in order.pairs():
            assert not order.precedes(b, a)
            for c in order.elements():
                if order.precedes(b, c):
                    assert order.precedes(a, c)

    @given(pairs)
    @settings(max_examples=40, deadline=None)
    def test_linear_extensions_contain_the_order(self, pair_list):
        order = build_order(pair_list)
        subset = list(order.elements())[:5]
        for extension in order.linear_extensions(subset):
            position = {e: i for i, e in enumerate(extension)}
            for a, b in order.restrict(subset).pairs():
                assert position[a] < position[b]

    @given(pairs)
    @settings(max_examples=40, deadline=None)
    def test_maxima_have_no_successors(self, pair_list):
        order = build_order(pair_list)
        pool = order.elements()
        for sink in order.maxima(pool):
            assert not (order.successors(sink) & pool)

    @given(pairs, pairs)
    @settings(max_examples=40, deadline=None)
    def test_union_contains_both_operands_when_defined(self, first_pairs, second_pairs):
        first, second = build_order(first_pairs), build_order(second_pairs)
        try:
            merged = PartialOrder.union(first, second)
        except CycleError:
            return
        assert merged.contains(first)
        assert merged.contains(second)


# --------------------------------------------------------------------------- #
# SAT solver invariants
# --------------------------------------------------------------------------- #
class TestSATProperties:
    """Differential sweep: every registered backend (the session-scoped
    ``backend`` fixture) must return identical verdicts, satisfying models,
    and projected-model counts as the seed DPLL oracle."""

    @given(cnf_clauses)
    @settings(max_examples=60, deadline=None)
    def test_models_satisfy_every_clause(self, backend, clause_spec):
        clauses = [
            tuple(var if positive else -var for var, positive in clause)
            for clause in clause_spec
        ]
        model = solve(clauses, num_variables=5, backend=backend)
        if model is None:
            # verify unsatisfiability by brute force over 5 variables
            from itertools import product

            for bits in product([False, True], repeat=5):
                assignment = {i + 1: bits[i] for i in range(5)}
                assert not all(
                    any(assignment[abs(l)] == (l > 0) for l in clause) for clause in clauses
                )
        else:
            for clause in clauses:
                assert any(model[abs(l)] == (l > 0) for l in clause)

    @given(cnf_clauses)
    @settings(max_examples=60, deadline=None)
    def test_cdcl_and_naive_verdicts_agree(self, backend, clause_spec):
        """The active backend and the retained seed DPLL (`solve_naive`)
        return the same satisfiability verdict on random formulas."""
        clauses = [
            tuple(var if positive else -var for var, positive in clause)
            for clause in clause_spec
        ]
        assert (solve(clauses, num_variables=5, backend=backend) is None) == (
            solve_naive(clauses, num_variables=5) is None
        )

    @given(cnf_clauses, st.lists(st.integers(1, 5), min_size=1, max_size=5, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_projected_model_counts_match_naive_enumeration(
        self, backend, clause_spec, projection
    ):
        """Incremental enumeration under `project_onto` yields exactly as
        many distinct projected models as seed-style from-scratch re-solving
        with blocking clauses."""
        cnf = CNF()
        for variable in range(1, 6):
            cnf.variable(f"x{variable}")
        for clause in clause_spec:
            cnf.add_clause(var if positive else -var for var, positive in clause)
        cdcl_count = sum(
            1 for _ in iterate_models(cnf, project_onto=projection, backend=backend)
        )

        clauses = list(cnf.clauses)
        naive_count = 0
        while True:
            model = solve_naive(clauses, cnf.num_variables)
            if model is None:
                break
            naive_count += 1
            clauses.append(
                tuple(-v if model.get(v, False) else v for v in projection)
            )
        assert cdcl_count == naive_count


# --------------------------------------------------------------------------- #
# Chase / CCQA invariants on random constraint-free specifications
# --------------------------------------------------------------------------- #
def build_specification(values, order_choices):
    """A single-relation specification with one entity and random orders."""
    schema = RelationSchema("R", ("A", "B"))
    instance = TemporalInstance(schema)
    for index, (a, b) in enumerate(values):
        instance.add(RelationTuple(schema, f"t{index}", {"EID": "e", "A": a, "B": b}))
    tids = instance.tids()
    for attribute, (i, j) in order_choices:
        lower, upper = tids[i % len(tids)], tids[j % len(tids)]
        if lower != upper:
            try:
                instance.add_order(attribute, lower, upper)
            except CycleError:
                pass
    return Specification({"R": instance})


spec_values = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=4
)
spec_orders = st.lists(
    st.tuples(st.sampled_from(["A", "B"]), st.tuples(st.integers(0, 3), st.integers(0, 3))),
    max_size=6,
)


class TestEvaluatorEquivalence:
    """The indexed engine (`evaluate`) and the retained seed engine
    (`evaluate_naive`) return identical answer sets on randomized synthetic
    instances."""

    @staticmethod
    def _database(seed):
        from repro.workloads.synthetic import SyntheticConfig, random_specification

        config = SyntheticConfig(
            entities=3,
            tuples_per_entity=2,
            attributes=2,
            order_density=0.0,
            value_domain=3,
            with_constraints=False,
            relations=2,
            seed=seed,
        )
        specification = random_specification(config)
        return {name: specification.instance(name) for name in specification.instance_names()}

    @staticmethod
    def _queries(constant):
        e, f, a, b, c = Var("e"), Var("f"), Var("a"), Var("b"), Var("c")
        join = Query(
            (e, f),
            Exists(
                (a, b, c),
                And(
                    RelationAtom("R0", (e, a, b)),
                    RelationAtom("R1", (f, a, c)),
                ),
            ),
            name="join",
        )
        selection = Query(
            (e, a),
            Exists(
                b,
                And(RelationAtom("R0", (e, a, b)), Compare(b, "=", Constant(constant))),
            ),
            name="selection",
        )
        duplicate_head = Query(
            (e, e),
            Exists((a, b), RelationAtom("R0", (e, a, b))),
            name="dup-head",
        )
        shadowing = Query(
            (e,),
            Exists(
                (a, b),
                And(
                    RelationAtom("R0", (e, a, b)),
                    # inner ∃f,a shadows the outer a
                    Exists((f, a), RelationAtom("R1", (f, a, Constant(constant)))),
                ),
            ),
            name="shadowing",
        )
        fo_negation = Query(
            (e, a),
            And(
                Exists(b, RelationAtom("R0", (e, a, b))),
                Not(Exists((f, c), RelationAtom("R1", (f, a, c)))),
            ),
            name="fo-negation",
        )
        return [join, selection, duplicate_head, shadowing, fo_negation]

    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=0, max_value=2))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_indexed_and_naive_engines_agree(self, seed, constant):
        database = self._database(seed)
        for query in self._queries(constant):
            assert evaluate(query, database) == evaluate_naive(query, database), query.name


class TestReasoningProperties:
    @given(spec_values, spec_orders)
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_constraint_free_specifications_are_consistent(self, values, order_choices):
        specification = build_specification(values, order_choices)
        assert is_consistent(specification, method="chase")
        assert is_consistent(specification, method="sat")

    @given(spec_values, spec_orders)
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_chase_orders_are_certain(self, values, order_choices):
        specification = build_specification(values, order_choices)
        chase = chase_certain_orders(specification)
        from repro.core.completion import consistent_completions

        completions = list(consistent_completions(specification))
        assert completions
        for (name, attribute), order in chase.orders.items():
            for lower, upper in order.pairs():
                assert all(c[name].precedes(attribute, lower, upper) for c in completions)

    @given(spec_values, spec_orders)
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_sp_certain_answers_hold_in_every_completion(self, values, order_choices):
        specification = build_specification(values, order_choices)
        schema = specification.instance("R").schema
        query = SPQuery("R", schema, ["A"])
        answers = certain_current_answers(query, specification, method="sp")
        from repro.core.completion import consistent_completions
        from repro.core.current import current_database
        from repro.query.evaluator import evaluate

        for completion in consistent_completions(specification):
            database = current_database(completion)
            assert answers <= evaluate(query, database)

    @given(spec_values, spec_orders)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_sp_and_enumeration_agree(self, values, order_choices):
        specification = build_specification(values, order_choices)
        schema = specification.instance("R").schema
        query = SPQuery("R", schema, ["B"])
        fast = certain_current_answers(query, specification, method="sp")
        slow = certain_current_answers(query, specification, method="enumerate")
        assert fast == slow
