"""Property sweep: snapshot → pickle → restore → ask equals rebuild → ask.

For ≥200 seeded random specifications a warm session is snapshotted **mid
mutation stream** (after some mutations, before others), the snapshot crosses
a real pickle boundary, and the restored session must answer every decision
problem exactly like an independently rebuilt specification — both right
after the restore and after the *remaining* mutations are applied to the
restored session (the restored warm state must stay correctly incremental,
not just correctly frozen).  A handful of seeds additionally restore in a
spawned subprocess, the serving layer's actual hop.

Reuses the mutation/check helpers of :mod:`test_session_mutation`, so the two
sweeps stay in lockstep about what "equivalent" means.
"""

from __future__ import annotations

import multiprocessing
import random

import pytest

from repro.session import ReasoningSession, SessionSnapshot, restore_bytes, snapshot_bytes
from repro.workloads.synthetic import (
    SyntheticConfig,
    preservation_workload,
    random_specification,
    random_sp_query,
)

from test_session_mutation import (
    _apply_to_session,
    _apply_to_spec,
    _check_base_problems,
    _check_preservation_problems,
    _mutations,
)

#: seeds per tier-1 sweep section; ≥200 overall per the acceptance criterion
BASE_SEEDS = 140
PRESERVATION_SEEDS = 60


def _roundtrip(session):
    """Snapshot, cross a real pickle boundary, restore."""
    payload = snapshot_bytes(session)
    assert isinstance(payload, bytes)
    restored = restore_bytes(payload)
    assert isinstance(session.snapshot(), SessionSnapshot)  # detached capture too
    return restored


def _run_base_seed(seed, backend=None):
    rng = random.Random(seed * 6151)
    config = SyntheticConfig(
        entities=2,
        tuples_per_entity=2,
        attributes=2,
        order_density=0.4,
        value_domain=3,
        with_constraints=bool(seed % 2),
        relations=1 + (seed % 2),
        with_copy_functions=seed % 4 >= 2,
        seed=seed,
    )
    spec = random_specification(config)
    rebuilt = random_specification(config)
    query = random_sp_query(spec, seed=seed)
    session = ReasoningSession(spec, backend=backend)
    # warm the substrate so the snapshot has real caches to carry
    _check_base_problems(seed, session, rebuilt, query)
    kinds = [("order", "tuple"), ("denial", "order"), ("tuple", "denial")][seed % 3]
    mutations = _mutations(spec, rng, kinds, tag=f"snap{seed}")
    split = len(mutations) // 2 if mutations else 0
    for kind, payload in mutations[:split]:
        _apply_to_session(session, kind, payload)
        rebuilt = _apply_to_spec(rebuilt, kind, payload)
    # mid-stream snapshot: some mutations folded in, some still to come
    restored = _roundtrip(session)
    _check_base_problems(seed, restored, rebuilt, query)
    for kind, payload in mutations[split:]:
        _apply_to_session(restored, kind, payload)
        rebuilt = _apply_to_spec(rebuilt, kind, payload)
        _check_base_problems(seed, restored, rebuilt, query)
    # the donor was not perturbed by the snapshot: it still answers for the
    # pre-snapshot state it last saw
    assert session.mutations == restored.mutations - len(mutations[split:])


def _run_preservation_seed(seed, backend=None):
    rng = random.Random(seed * 9973)
    spec, query = preservation_workload(
        candidates=2, conflict_groups=1 + seed % 2, entities=1,
        spoiler=bool(seed % 2), seed=seed,
    )
    rebuilt, _ = preservation_workload(
        candidates=2, conflict_groups=1 + seed % 2, entities=1,
        spoiler=bool(seed % 2), seed=seed,
    )
    session = ReasoningSession(spec, backend=backend)
    _check_preservation_problems(seed, session, rebuilt, query)
    restored = _roundtrip(session)
    _check_preservation_problems(seed, restored, rebuilt, query)
    kinds = [("import", "order"), ("denial",), ("order", "import")][seed % 3]
    for kind, payload in _mutations(spec, rng, kinds, tag=f"snapp{seed}"):
        # apply to the plain spec first: `spec` is aliased by the *donor*
        # session, whose `_mutations` picks need the un-mutated view
        _apply_to_session(restored, kind, payload)
        rebuilt = _apply_to_spec(rebuilt, kind, payload)
    _check_preservation_problems(seed, restored, rebuilt, query)


# --------------------------------------------------------------------------- #
# Tier-1 sweeps (≥200 seeds overall)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", range(BASE_SEEDS))
def test_snapshot_restore_equals_rebuild_base_problems(seed, backend):
    _run_base_seed(seed, backend=backend)


@pytest.mark.parametrize("seed", range(PRESERVATION_SEEDS))
def test_snapshot_restore_equals_rebuild_preservation_problems(seed, backend):
    _run_preservation_seed(seed, backend=backend)


# --------------------------------------------------------------------------- #
# Restore in a spawned subprocess (the serving layer's real hop)
# --------------------------------------------------------------------------- #
def _subprocess_check(payload, queue):
    session = restore_bytes(payload)
    queue.put((session.consistent(), session.deterministic(), session.mutations))


@pytest.mark.parametrize("seed", [0, 7])
def test_snapshot_restores_in_a_subprocess(seed):
    config = SyntheticConfig(
        entities=2, tuples_per_entity=2, attributes=2, order_density=0.4,
        value_domain=3, with_constraints=True, seed=seed,
    )
    session = ReasoningSession(random_specification(config))
    expected = (session.consistent(), session.deterministic(), session.mutations)
    context = multiprocessing.get_context("spawn")
    queue = context.Queue()
    process = context.Process(
        target=_subprocess_check, args=(snapshot_bytes(session), queue)
    )
    process.start()
    try:
        assert queue.get(timeout=60) == expected
    finally:
        process.join(timeout=10)


# --------------------------------------------------------------------------- #
# Extended sweeps (excluded from tier-1 via the `slow` marker)
# --------------------------------------------------------------------------- #
@pytest.mark.slow
@pytest.mark.parametrize("seed", range(2000, 2150))
def test_snapshot_restore_equals_rebuild_base_problems_slow(seed):
    _run_base_seed(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(2000, 2080))
def test_snapshot_restore_equals_rebuild_preservation_problems_slow(seed):
    _run_preservation_seed(seed)
