"""Property sweep: mutate-then-ask equals rebuild-then-ask.

For ≥200 seeded random specifications, a warm :class:`ReasoningSession` is
exercised (so its encoder/space/enumerators exist), mutated in place through
the session API, and asked again; an identical mutation is applied to an
independently generated copy of the specification and answered through the
module-level functions (which build a *fresh* session per call — the
rebuild-then-ask side).  Every answer must agree, across all eight decision
problems: CPS, COP, DCIP, CCQA, SP, CPP, ECP and BCP.

This is also the soundness harness for the incremental encoder/space deltas
(`add_clause` between solves) against the full-rebuild semantics, and the
cross-check of the BCP bound-refusal certificates.
"""

from __future__ import annotations

import copy
import random

import pytest

from repro.core.denial import AttrRef, Comparison, CurrencyAtom, DenialConstraint
from repro.core.tuples import RelationTuple
from repro.exceptions import InconsistentSpecificationError
from repro.preservation.bcp import bound_refusal_certificates, has_bounded_extension
from repro.preservation.cpp import is_currency_preserving
from repro.preservation.ecp import currency_preserving_extension_exists
from repro.preservation.extensions import apply_imports, candidate_imports
from repro.reasoning.ccqa import certain_current_answers, sp_certain_answers
from repro.reasoning.cop import certain_ordering
from repro.reasoning.cps import is_consistent
from repro.reasoning.dcip import is_deterministic
from repro.session import ReasoningSession
from repro.workloads.synthetic import (
    SyntheticConfig,
    chained_preservation_workload,
    preservation_workload,
    random_specification,
    random_sp_query,
    streaming_mutation_workload,
)

#: seeds per tier-1 sweep section; the acceptance criterion asks for ≥200
#: overall (they run in tier-1; the `slow` sections add more below).
BASE_SEEDS = 140
PRESERVATION_SEEDS = 60
#: seeds for the long-stream sweep (32-mutation streams, windowed re-asks);
#: runs per registered solver backend via the session-scoped fixture.
STREAM_SEEDS = 200


# --------------------------------------------------------------------------- #
# Mutations, applied identically through the session API and to a plain spec
# --------------------------------------------------------------------------- #
def _pick_order_mutation(spec, rng):
    """A safe (acyclic) new order pair, or None."""
    for name in spec.instance_names():
        instance = spec.instance(name)
        for eid in instance.entities():
            block = instance.entity_tids(eid)
            if len(block) < 2:
                continue
            attribute = rng.choice(instance.schema.attributes)
            lower, upper = rng.sample(block, 2)
            order = instance.order(attribute)
            if not order.precedes(upper, lower) and not order.precedes(lower, upper):
                return (name, attribute, lower, upper)
    return None


def _denial_for(spec, rng):
    """A monotone 'larger a0 first' constraint on a random instance."""
    name = rng.choice(spec.instance_names())
    schema = spec.instance(name).schema
    attribute = schema.attributes[0]
    return name, DenialConstraint(
        schema,
        ("s", "t"),
        body=[Comparison(AttrRef("s", attribute), ">", AttrRef("t", attribute))],
        head=CurrencyAtom("t", attribute, "s"),
        name=f"sweep_monotone_{name}_{attribute}",
    )


def _tuple_for(spec, rng, tag):
    name = rng.choice(spec.instance_names())
    instance = spec.instance(name)
    schema = instance.schema
    eid = rng.choice(instance.entities())
    values = {schema.eid: eid}
    for attribute in schema.attributes:
        values[attribute] = rng.randrange(4)
    return name, RelationTuple(schema, f"sweep_{tag}", values)


def _mutations(spec, rng, kinds, tag):
    """A deterministic list of (kind, payload) mutations available on *spec*."""
    chosen = []
    if "order" in kinds:
        order = _pick_order_mutation(spec, rng)
        if order is not None:
            chosen.append(("order", order))
    if "denial" in kinds:
        chosen.append(("denial", _denial_for(spec, rng)))
    if "tuple" in kinds:
        chosen.append(("tuple", _tuple_for(spec, rng, tag)))
    if "import" in kinds:
        candidates = candidate_imports(spec)
        if candidates:
            chosen.append(("import", rng.choice(candidates)))
    return chosen


def _apply_to_session(session, kind, payload):
    if kind == "order":
        name, attribute, lower, upper = payload
        session.add_order(name, attribute, lower, upper)
    elif kind == "denial":
        name, constraint = payload
        session.add_denial(name, constraint)
    elif kind == "tuple":
        name, tup = payload
        session.add_tuple(name, tup)
    else:
        session.add_copy_import(payload)


def _apply_to_spec(spec, kind, payload):
    """The rebuild side: the same mutation through the plain core API."""
    if kind == "order":
        name, attribute, lower, upper = payload
        spec.instance(name).add_order(attribute, lower, upper)
        return spec
    if kind == "denial":
        name, constraint = payload
        spec.add_constraint(name, constraint)
        return spec
    if kind == "tuple":
        name, tup = payload
        spec.instance(name).add(RelationTuple(tup.schema, tup.tid, tup.values()))
        return spec
    return apply_imports(spec, [payload]).specification


# --------------------------------------------------------------------------- #
# Answer comparison (errors compared by type)
# --------------------------------------------------------------------------- #
def _outcome(thunk):
    try:
        return ("ok", thunk())
    except InconsistentSpecificationError:
        return ("inconsistent", None)


def _check_base_problems(seed, session, rebuilt, query):
    assert session.specification == rebuilt, f"seed {seed}: spec drifted from rebuild"
    assert session.consistent() == is_consistent(rebuilt), f"seed {seed}: CPS"
    name = rebuilt.instance_names()[0]
    instance = rebuilt.instance(name)
    for eid in instance.entities():
        block = instance.entity_tids(eid)
        if len(block) >= 2:
            order = {instance.schema.attributes[-1]: [(block[0], block[1])]}
            assert session.certain_ordering(name, order) == certain_ordering(
                rebuilt, name, order
            ), f"seed {seed}: COP"
            break
    assert session.deterministic() == is_deterministic(rebuilt), f"seed {seed}: DCIP"
    warm = _outcome(lambda: session.certain_answers(query))
    cold = _outcome(lambda: certain_current_answers(query, rebuilt))
    assert warm == cold, f"seed {seed}: CCQA {warm} != {cold}"
    if not rebuilt.has_denial_constraints():
        assert session.sp_answers(query) == sp_certain_answers(
            query, rebuilt
        ), f"seed {seed}: SP"


def _check_preservation_problems(seed, session, rebuilt, query, k=1):
    assert session.specification == rebuilt, f"seed {seed}: spec drifted from rebuild"
    assert session.cpp(query) == is_currency_preserving(
        query, rebuilt.copy()
    ), f"seed {seed}: CPP"
    assert session.ecp(query) == currency_preserving_extension_exists(
        query, rebuilt.copy()
    ), f"seed {seed}: ECP"
    assert session.bcp(query, k) == has_bounded_extension(
        query, rebuilt.copy(), k
    ), f"seed {seed}: BCP"


def _run_base_seed(seed):
    rng = random.Random(seed * 7919)
    config = SyntheticConfig(
        entities=2,
        tuples_per_entity=2,
        attributes=2,
        order_density=0.4,
        value_domain=3,
        with_constraints=bool(seed % 2),
        relations=1 + (seed % 2),
        with_copy_functions=seed % 4 >= 2,
        seed=seed,
    )
    spec = random_specification(config)
    rebuilt = random_specification(config)
    query = random_sp_query(spec, seed=seed)
    session = ReasoningSession(spec)
    # warm the substrate before mutating, so the mutations exercise the
    # incremental encoder/enumerator paths rather than fresh builds
    _check_base_problems(seed, session, rebuilt, query)
    kinds = [("order", "tuple"), ("denial", "order"), ("tuple", "denial")][seed % 3]
    for kind, payload in _mutations(spec, rng, kinds, tag=f"{seed}"):
        _apply_to_session(session, kind, payload)
        rebuilt = _apply_to_spec(rebuilt, kind, payload)
        _check_base_problems(seed, session, rebuilt, query)


def _run_preservation_seed(seed):
    rng = random.Random(seed * 104729)
    if seed % 3 == 2:
        spec, query = chained_preservation_workload(
            depth=1 + seed % 2, candidates=1, entities=1, spoiler=bool(seed % 2), seed=seed
        )
        rebuilt, _ = chained_preservation_workload(
            depth=1 + seed % 2, candidates=1, entities=1, spoiler=bool(seed % 2), seed=seed
        )
    else:
        spec, query = preservation_workload(
            candidates=2, conflict_groups=1 + seed % 2, entities=1,
            spoiler=bool(seed % 2), seed=seed,
        )
        rebuilt, _ = preservation_workload(
            candidates=2, conflict_groups=1 + seed % 2, entities=1,
            spoiler=bool(seed % 2), seed=seed,
        )
    session = ReasoningSession(spec)
    _check_base_problems(seed, session, rebuilt, query)
    _check_preservation_problems(seed, session, rebuilt, query)
    kinds = [("import", "order"), ("denial",), ("order", "import")][seed % 3]
    for kind, payload in _mutations(spec, rng, kinds, tag=f"p{seed}"):
        _apply_to_session(session, kind, payload)
        rebuilt = _apply_to_spec(rebuilt, kind, payload)
        _check_preservation_problems(seed, session, rebuilt, query)
    # cross-check bound-refusal certificates on the final state
    refusals = session.bcp_refusal(query, 0)
    if refusals is None:
        assert has_bounded_extension(query, rebuilt.copy(), 0)
    else:
        assert not has_bounded_extension(query, rebuilt.copy(), 0)
        for certificate in refusals:
            assert certificate.refutes_preservation(), f"seed {seed}: refusal self-check"
            assert is_consistent(
                certificate.extension.specification
            ), f"seed {seed}: refusal extension inconsistent"
            assert certain_current_answers(
                query, certificate.extension.specification
            ) == certificate.extension_answers, f"seed {seed}: refusal answers"


# --------------------------------------------------------------------------- #
# Long-stream sweep: sustained mutation streams with windowed re-asks
# --------------------------------------------------------------------------- #
def _check_all_eight(seed, session, rebuilt, query, k=1):
    """All eight decision problems, inconsistency compared as an outcome
    (the stream's denial constraints routinely flip specs inconsistent)."""
    _check_base_problems(seed, session, rebuilt, query)
    for label, warm_thunk, cold_thunk in (
        ("CPP", lambda: session.cpp(query),
         lambda: is_currency_preserving(query, rebuilt.copy())),
        ("ECP", lambda: session.ecp(query),
         lambda: currency_preserving_extension_exists(query, rebuilt.copy())),
        ("BCP", lambda: session.bcp(query, k),
         lambda: has_bounded_extension(query, rebuilt.copy(), k)),
    ):
        warm = _outcome(warm_thunk)
        cold = _outcome(cold_thunk)
        assert warm == cold, f"seed {seed}: {label} {warm} != {cold}"


def _run_stream_seed(seed, backend, mutations=32, window=8):
    """One sustained stream: a warm delta-policy session against a cold
    rebuilt specification, re-asked every *window* mutations.

    Intermediate windows compare the base problems (CPS, COP, DCIP, CCQA,
    SP); the final state compares all eight.  The mutation counters then
    prove the fast path actually ran: the space never fell back to a rebuild
    mid-stream."""
    config = SyntheticConfig(
        entities=2,
        tuples_per_entity=2,
        attributes=2,
        order_density=0.3,
        value_domain=3,
        relations=1 + seed % 2,
        with_copy_functions=seed % 4 >= 2,
        seed=seed,
    )
    specification, events, queries = streaming_mutation_workload(
        config=config, mutations=mutations, seed=seed
    )
    session = ReasoningSession(
        copy.deepcopy(specification), backend=backend, invalidation="delta"
    )
    rebuilt = copy.deepcopy(specification)
    query = queries[seed % len(queries)]
    # warm the substrate before the stream so the mutations exercise the
    # incremental chase/encoder/space paths rather than fresh builds
    _check_base_problems(seed, session, rebuilt, query)
    for index, event in enumerate(events):
        event.apply(session)
        event.apply_to_specification(rebuilt)
        if (index + 1) % window == 0 and index + 1 < len(events):
            _check_base_problems(seed, session, rebuilt, query)
    _check_all_eight(seed, session, rebuilt, query)
    stats = session.mutation_stats()
    assert stats["space_rebuilt"] == 0, f"seed {seed}: space delta fell back"


@pytest.mark.parametrize("seed", range(STREAM_SEEDS))
def test_long_stream_equals_rebuild(seed, backend):
    _run_stream_seed(seed, backend)


# --------------------------------------------------------------------------- #
# Tier-1 sweeps (≥200 seeds overall)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", range(BASE_SEEDS))
def test_mutate_equals_rebuild_base_problems(seed):
    _run_base_seed(seed)


@pytest.mark.parametrize("seed", range(PRESERVATION_SEEDS))
def test_mutate_equals_rebuild_preservation_problems(seed):
    _run_preservation_seed(seed)


# --------------------------------------------------------------------------- #
# Extended sweeps (excluded from tier-1 via the `slow` marker)
# --------------------------------------------------------------------------- #
@pytest.mark.slow
@pytest.mark.parametrize("seed", range(1000, 1200))
def test_mutate_equals_rebuild_base_problems_slow(seed):
    _run_base_seed(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(1000, 1100))
def test_mutate_equals_rebuild_preservation_problems_slow(seed):
    _run_preservation_seed(seed)
