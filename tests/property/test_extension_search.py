"""Differential property harness: SAT-encoded extension search vs the oracle.

Every case builds a small randomized specification (seeded, deterministic)
and checks that the SAT engine (:mod:`repro.preservation.sat_extensions`)
agrees with the seed explicit path
(:func:`repro.preservation.extensions.enumerate_extensions_naive` plus
per-subset consistency / CCQA) on

* the *set* of consistent extensions — downward-closed subsets of the
  candidate-import closure, derived (chained) candidates included,
* the certain current answers of every consistent extension,
* CPP verdicts, witness existence and the validity of the witness's
  answer-difference certificate (the certificate completion re-evaluated),
* ECP verdicts and the greedily constructed maximal extension,
* BCP verdicts for small bounds (SAT witnesses re-validated by the oracle,
  with **zero** fresh search-space constructions inside the SAT BCP run).

Tier-1 runs the full ≥200-case mixed harness (seeds 0–199) plus a dedicated
≥200-case *chained* sweep over workloads whose interesting extensions need
derived imports; an extended sweep over seeds 200–599 is marked ``slow`` and
deselected by the default ``-m "not slow"`` configuration (run it with
``pytest -m "slow or not slow"``).
"""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.core.copy_function import CopyFunction, CopySignature
from repro.core.denial import AttrRef, Comparison, CurrencyAtom, DenialConstraint
from repro.core.instance import TemporalInstance
from repro.core.schema import RelationSchema
from repro.core.specification import Specification
from repro.core.tuples import RelationTuple
from repro.exceptions import InconsistentSpecificationError
from repro.preservation.bcp import (
    bounded_currency_preserving_extension,
    has_bounded_extension,
)
from repro.preservation.cpp import find_violating_extension, is_currency_preserving
from repro.preservation.ecp import currency_preserving_extension_exists, maximal_extension
from repro.preservation.extensions import apply_imports
from repro.preservation.sat_extensions import ExtensionSearchSpace
from repro.query.ast import SPQuery
from repro.query.engine import QueryEngine
from repro.reasoning.ccqa import certain_current_answers
from repro.reasoning.cps import is_consistent
from repro.workloads.synthetic import chained_preservation_workload

CASES = 200
EXTENDED_CASES = 600  # the slow tier sweeps seeds CASES..EXTENDED_CASES-1 on top
CHAINED_CASES = 200


# --------------------------------------------------------------------------- #
# Randomized specification generators
# --------------------------------------------------------------------------- #
def _random_orders(instance: TemporalInstance, rng: random.Random, density: float) -> None:
    """Sprinkle acyclic initial currency orders (respecting a random base
    permutation per entity block, as the synthetic workloads do)."""
    for attribute in instance.schema.attributes:
        for eid in instance.entities():
            base = list(instance.entity_tids(eid))
            rng.shuffle(base)
            for i in range(len(base)):
                for j in range(i + 1, len(base)):
                    if rng.random() < density:
                        instance.add_order(attribute, base[i], base[j])


def _monotone(schema: RelationSchema, attribute: str) -> DenialConstraint:
    return DenialConstraint(
        schema,
        ("s", "t"),
        body=[Comparison(AttrRef("s", attribute), ">", AttrRef("t", attribute))],
        head=CurrencyAtom("t", attribute, "s"),
        name=f"monotone_{attribute}_{schema.name}",
    )


def _conflict_pair(schema: RelationSchema, attribute: str) -> list:
    """An up/down constraint pair: two tuples with distinct *attribute* values
    must precede each other — presence of both is inconsistent."""
    return [
        DenialConstraint(
            schema,
            ("s", "t"),
            body=[Comparison(AttrRef("s", attribute), op, AttrRef("t", attribute))],
            head=CurrencyAtom("t", attribute, "s"),
            name=f"{name}_{attribute}_{schema.name}",
        )
        for op, name in ((">", "up"), ("<", "down"))
    ]


def _pair_case(rng: random.Random):
    """Source/target pair linked by a full-coverage copy function."""
    schema_s = RelationSchema("S", ("A", "B"))
    schema_t = RelationSchema("T", ("A", "B"))
    source = TemporalInstance(schema_s)
    target = TemporalInstance(schema_t)
    mapping = {}
    entities = 1 if rng.random() < 0.7 else 2
    for e in range(entities):
        eid = f"e{e}"
        src_rows = []
        for i in range(rng.randint(1, 3)):
            values = {"EID": eid, "A": rng.randint(0, 2), "B": rng.randint(0, 2)}
            tid = f"s{e}_{i}"
            source.add(RelationTuple(schema_s, tid, values))
            src_rows.append((tid, values))
        for i in range(rng.randint(1, 2)):
            tid = f"t{e}_{i}"
            if rng.random() < 0.6:
                src_tid, src_values = rng.choice(src_rows)
                values = {"EID": eid, "A": src_values["A"], "B": src_values["B"]}
                mapping[tid] = src_tid
            else:
                values = {"EID": eid, "A": rng.randint(0, 2), "B": rng.randint(0, 2)}
            target.add(RelationTuple(schema_t, tid, values))
    _random_orders(source, rng, 0.3)
    _random_orders(target, rng, 0.3)
    constraints = {"S": [], "T": []}
    if rng.random() < 0.5:
        constraints["T"].append(_monotone(schema_t, "A"))
    if rng.random() < 0.3:
        constraints["T"].extend(_conflict_pair(schema_t, "B"))
    if rng.random() < 0.2:
        constraints["S"].append(_monotone(schema_s, rng.choice(["A", "B"])))
    copy_function = CopyFunction(
        "rho",
        CopySignature(schema_t, ("A", "B"), schema_s, ("A", "B")),
        target="T",
        source="S",
        mapping=mapping,
    )
    specification = Specification(
        {"S": source, "T": target}, constraints, [copy_function]
    )
    projected = rng.choice(["A", "B"])
    eq_const = {}
    if rng.random() < 0.4:
        other = "B" if projected == "A" else "A"
        eq_const[other] = rng.randint(0, 2)
    query = SPQuery("T", schema_t, [projected], eq_const=eq_const, name="QT")
    return specification, query


def _chain_case(rng: random.Random):
    """Three relations chained by full-coverage copy functions, so imports
    into the middle relation create *derived* candidate imports that do not
    exist in the base specification (selector implications in the space)."""
    schemas = [RelationSchema(f"C{i}", ("A",)) for i in range(3)]
    instances = {}
    rows_by_relation = []
    for index, schema in enumerate(schemas):
        instance = TemporalInstance(schema)
        count = rng.randint(2, 3) if index == 0 else rng.randint(1, 2)
        rows = []
        for i in range(count):
            values = {"EID": "e", "A": rng.randint(0, 2)}
            tid = f"c{index}_{i}"
            instance.add(RelationTuple(schema, tid, values))
            rows.append((tid, values))
        _random_orders(instance, rng, 0.3)
        instances[schema.name] = instance
        rows_by_relation.append(rows)
    copy_functions = []
    for index in range(2):
        mapping = {}
        for tid, values in rows_by_relation[index + 1]:
            matches = [s for s, sv in rows_by_relation[index] if sv["A"] == values["A"]]
            if matches and rng.random() < 0.8:
                mapping[tid] = rng.choice(matches)
        copy_functions.append(
            CopyFunction(
                f"rho{index}",
                CopySignature(schemas[index + 1], ("A",), schemas[index], ("A",)),
                target=schemas[index + 1].name,
                source=schemas[index].name,
                mapping=mapping,
            )
        )
    constraints = {schema.name: [] for schema in schemas}
    if rng.random() < 0.5:
        constraints["C2"].append(_monotone(schemas[2], "A"))
    specification = Specification(instances, constraints, copy_functions)
    query = SPQuery("C2", schemas[2], ["A"], name="QC")
    return specification, query


def _generate(seed: int):
    rng = random.Random(seed)
    if seed % 10 == 9:
        return _chain_case(rng)
    return _pair_case(rng)


def _generate_chained(seed: int):
    """Chained-workload generator for the dedicated sweep: alternate between
    the structured chained preservation workload (derived candidates by
    construction, tunable chain depth) and fully randomized chain specs."""
    rng = random.Random(10_000 + seed)
    if seed % 2 == 0:
        return chained_preservation_workload(
            depth=rng.choice((2, 2, 3)),
            candidates=rng.randint(1, 2),
            entities=1,
            spoiler=rng.random() < 0.5,
            seed=seed,
        )
    return _chain_case(rng)


# --------------------------------------------------------------------------- #
# Oracles
# --------------------------------------------------------------------------- #
def _oracle_answers(query, specification):
    """Certain answers via the pre-existing CCQA path, None when Mod(S)=∅."""
    try:
        return certain_current_answers(query, specification, method="candidates")
    except InconsistentSpecificationError:
        return None


def _oracle_consistent_selections(specification, closure):
    """Explicitly materialise every downward-closed subset of the closure and
    keep the consistent ones (subsets missing a derived import's prerequisite
    are not extensions at all)."""
    consistent = set()
    candidates = closure.candidates
    for size in range(len(candidates) + 1):
        for subset in combinations(range(len(candidates)), size):
            if not closure.is_downward_closed(subset):
                continue
            chosen = [candidates[i] for i in subset]
            if is_consistent(apply_imports(specification, chosen).specification):
                consistent.add(frozenset(subset))
    return consistent


def _violating(query, specification, search, space=None):
    try:
        witness = find_violating_extension(
            query, specification, search=search, ccqa_method="candidates", space=space
        )
    except InconsistentSpecificationError:
        return "inconsistent", None
    return "ok", witness


def _assert_valid_certificate(seed, query, specification, witness):
    """The certificate names a genuinely changed answer and its completion,
    re-evaluated, refutes the answer's certainty on the claimed side."""
    certificate = witness.certificate
    assert certificate is not None, f"seed {seed}: witness carries no certificate"
    base = _oracle_answers(query, specification)
    extended = _oracle_answers(query, witness.specification)
    assert base is not None and extended is not None
    if certificate.gained:
        assert certificate.answer in extended and certificate.answer not in base, (
            f"seed {seed}: certificate answer not gained"
        )
        assert certificate.completion_of == "base"
    else:
        assert certificate.answer in base and certificate.answer not in extended, (
            f"seed {seed}: certificate answer not lost"
        )
        assert certificate.completion_of == "extension"
    engine = QueryEngine(query)
    assert certificate.refutes_certainty(engine), (
        f"seed {seed}: re-evaluating the query on the certificate completion "
        f"still produces the changed answer"
    )


# --------------------------------------------------------------------------- #
# The differential check
# --------------------------------------------------------------------------- #
def _check_case(seed: int, specification, query, bcp_bounds=(0, 1, 2), backend=None) -> None:
    space = ExtensionSearchSpace(specification, backend=backend)

    # 1. the sets of consistent extensions coincide (closure-wide)
    oracle_consistent = _oracle_consistent_selections(specification, space.closure)
    sat_consistent = {frozenset(s) for s in space.iterate_consistent_selections()}
    assert sat_consistent == oracle_consistent, f"seed {seed}: consistent sets diverge"
    assert space.has_chained_candidates == bool(space.prerequisites)

    # 2. certain answers agree on every consistent extension (incl. ρ itself)
    engine = QueryEngine(query)
    for selection in sorted(sat_consistent, key=sorted):
        expected = _oracle_answers(query, space.extension(tuple(selection)).specification)
        got = space.certain_answers(engine, tuple(selection))
        assert got == expected, f"seed {seed}: answers diverge on {sorted(selection)}"

    # 3. CPP: verdicts agree; witnesses carry valid certificates
    sat_status, sat_witness = _violating(query, specification, "sat", space=space)
    naive_status, naive_witness = _violating(query, specification, "naive")
    assert sat_status == naive_status, f"seed {seed}: CPP consistency status diverges"
    assert (sat_witness is None) == (naive_witness is None), f"seed {seed}: CPP verdicts diverge"
    for witness in (sat_witness, naive_witness):
        if witness is not None:
            _assert_valid_certificate(seed, query, specification, witness)
    assert is_currency_preserving(query, specification, method="sat", space=space) == \
        is_currency_preserving(query, specification, method="enumerate")

    # 4. ECP and the maximal extension
    assert currency_preserving_extension_exists(query, specification, space=space) == \
        is_consistent(specification)
    sat_maximal = maximal_extension(specification, search="sat", space=space)
    naive_maximal = maximal_extension(specification, search="naive")
    assert sat_maximal.imports == naive_maximal.imports, f"seed {seed}: maximal diverges"

    # 5. BCP for small bounds; SAT witnesses re-validated by the oracle, and
    #    the whole SAT run must reuse the one space (no fresh constructions)
    for k in bcp_bounds:
        constructions_before = ExtensionSearchSpace.constructions
        sat_witness = bounded_currency_preserving_extension(
            query, specification, k, search="sat", space=space, engine=engine
        )
        assert ExtensionSearchSpace.constructions == constructions_before, (
            f"seed {seed}: BCP k={k} built a fresh search space"
        )
        naive_verdict = has_bounded_extension(
            query, specification, k, method="enumerate", search="naive"
        )
        assert (sat_witness is not None) == naive_verdict, f"seed {seed}: BCP k={k} diverges"
        if sat_witness is not None:
            assert sat_witness.size_increase <= k
            assert is_currency_preserving(
                query, sat_witness.specification, method="enumerate"
            ), f"seed {seed}: BCP k={k} SAT witness not preserving"


@pytest.mark.parametrize("seed", range(CASES))
def test_sat_and_naive_engines_agree(seed, backend):
    """The ≥200-case differential sweep (tier-1), per registered backend."""
    specification, query = _generate(seed)
    _check_case(seed, specification, query, backend=backend)


@pytest.mark.parametrize("seed", range(CHAINED_CASES))
def test_chained_workloads_agree(seed, backend):
    """≥200 seeded chained specifications: CPP/ECP/BCP verdicts match the
    explicit closure oracle, witnesses need derived imports, certificates
    hold (tier-1, per registered backend)."""
    specification, query = _generate_chained(seed)
    _check_case(seed, specification, query, bcp_bounds=(0, 1, 2, 3), backend=backend)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(CASES, EXTENDED_CASES))
def test_sat_and_naive_engines_agree_extended(seed, backend):
    """400 further seeds for the full property sweep (slow tier)."""
    specification, query = _generate(seed)
    _check_case(seed, specification, query, backend=backend)
