"""Fault-free behavior of :class:`repro.serve.ReasoningService`.

One module-scoped service (spawned worker processes are expensive) serves all
tests; assertions about router/supervisor counters are therefore *relative* —
they measure deltas, never absolute totals."""

import asyncio
import time

import pytest

from repro.serve import Mutation, ReasoningService
from repro.session import ReasoningSession
from repro.session.batch import ProblemRequest
from repro.solvers.budget import Budget
from repro.workloads import company
from repro.workloads.synthetic import preservation_workload

ORDER = {"salary": [("s1", "s3")]}


@pytest.fixture(scope="module")
def service():
    svc = ReasoningService(processes=2, retries=1)
    yield svc
    svc.close()


def run(coro):
    return asyncio.run(coro)


class TestAnswers:
    def test_answers_match_a_direct_session(self, service):
        spec = company.company_specification()
        queries = company.paper_queries()
        oracle = ReasoningSession(company.company_specification())
        requests = [
            (spec, ProblemRequest("cps")),
            (spec, ProblemRequest("dcip", args=("Emp",))),
            (spec, ProblemRequest("cop", args=("Emp", ORDER))),
            (spec, ProblemRequest("ccqa", query=queries["Q1"])),
        ]
        answers = run(service.gather(requests))
        assert [a.ok for a in answers] == [True] * 4
        assert answers[0].value == oracle.consistent()
        assert answers[1].value == oracle.deterministic("Emp")
        assert answers[2].value == oracle.certain_ordering("Emp", ORDER)
        assert answers[3].value == oracle.certain_answers(queries["Q1"])

    def test_query_problems_on_a_preservation_workload(self, service):
        spec, query = preservation_workload(candidates=3, conflict_groups=2, seed=1)
        oracle = ReasoningSession(
            preservation_workload(candidates=3, conflict_groups=2, seed=1)[0]
        )
        answers = run(
            service.gather(
                [
                    (spec, ProblemRequest("cpp", query=query)),
                    (spec, ProblemRequest("ecp", query=query)),
                    (spec, ProblemRequest("bcp", query=query, args=(2,))),
                ]
            )
        )
        assert [a.ok for a in answers] == [True] * 3
        assert answers[0].value == oracle.cpp(query)
        assert answers[1].value == oracle.ecp(query)
        assert answers[2].value == oracle.bcp(query, 2)

    def test_gather_preserves_request_order(self, service):
        spec = company.company_specification()
        requests = [
            (spec, ProblemRequest("cps")),
            (spec, ProblemRequest("dcip", args=("Emp",))),
            (spec, ProblemRequest("cps")),
        ]
        answers = run(service.gather(requests))
        assert [a.problem for a in answers] == ["cps", "dcip", "cps"]

    def test_stream_yields_every_index_exactly_once(self, service):
        spec = company.company_specification()
        requests = [(spec, ProblemRequest("cps")) for _ in range(5)]

        async def collect():
            seen = []
            async for index, answer in service.stream(requests):
                seen.append((index, answer.ok))
            return seen

        seen = run(collect())
        assert sorted(index for index, _ in seen) == [0, 1, 2, 3, 4]
        assert all(ok for _, ok in seen)


class TestAffinity:
    def test_structural_twins_share_one_warm_session(self, service):
        spec = company.company_specification()
        twin = company.company_specification()
        before = service.stats()["router"]
        run(service.submit(spec, ProblemRequest("cps")))
        after_first = service.stats()["router"]
        run(service.submit(twin, ProblemRequest("cps")))
        after_twin = service.stats()["router"]
        # the twin joined the existing entry: a hit, no new session
        assert after_twin["hits"] == after_first["hits"] + 1
        assert after_twin["sessions"] == after_first["sessions"]
        assert after_first["misses"] <= before["misses"] + 1

    def test_mutated_session_stops_accepting_structural_twins(self, service):
        spec = company.company_specification()
        run(service.submit(spec, ProblemRequest("cps")))
        mutated = run(
            service.submit(spec, Mutation("add_order", args=("Emp", "salary", "s1", "s3")))
        )
        assert mutated.ok, mutated.error
        before = service.stats()["router"]
        twin = company.company_specification()
        answer = run(service.submit(twin, ProblemRequest("cop", args=("Emp", ORDER))))
        after = service.stats()["router"]
        # the twin no longer matches the mutated entry: fresh session, fresh key
        assert after["misses"] == before["misses"] + 1
        oracle = ReasoningSession(company.company_specification())
        assert answer.value == oracle.certain_ordering("Emp", ORDER)

    def test_mutation_changes_subsequent_answers(self, service):
        spec = company.company_specification()
        baseline = run(service.submit(spec, ProblemRequest("cop", args=("Emp", ORDER))))
        mutated = run(
            service.submit(spec, Mutation("add_order", args=("Emp", "salary", "s1", "s3")))
        )
        assert mutated.ok, mutated.error
        after = run(service.submit(spec, ProblemRequest("cop", args=("Emp", ORDER))))
        oracle = ReasoningSession(company.company_specification())
        assert baseline.value == oracle.certain_ordering("Emp", ORDER)
        oracle.add_order("Emp", "salary", "s1", "s3")
        assert after.value == oracle.certain_ordering("Emp", ORDER) is True


class TestFailuresAreStructured:
    def test_bad_mutation_fails_without_committing(self, service):
        spec = company.company_specification()
        bad = run(
            service.submit(
                spec, Mutation("add_order", args=("Emp", "salary", "nope", "s3"))
            )
        )
        assert not bad.ok
        assert bad.failure is not None and "nope" in bad.failure.message
        # the failed mutation never entered the log: answers stay baseline
        answer = run(service.submit(spec, ProblemRequest("cps")))
        oracle = ReasoningSession(company.company_specification())
        assert answer.value == oracle.consistent()

    def test_unknown_mutation_op_is_rejected_client_side(self):
        with pytest.raises(Exception):
            Mutation("drop_table", args=("Emp",))

    def test_expired_deadline_degrades_with_a_label(self, service):
        spec, query = preservation_workload(candidates=3, conflict_groups=2, seed=3)
        answer = run(
            service.submit(
                spec,
                ProblemRequest("cpp", query=query),
                deadline=Budget(deadline=time.monotonic() - 1.0),
            )
        )
        assert not answer.ok
        assert answer.degraded is not None
        assert answer.degraded.reason in ("deadline", "conflicts")
        assert answer.degraded.attempted  # names what was tried

    def test_stats_shape(self, service):
        stats = service.stats()
        assert {"hits", "misses", "evictions", "sessions"} <= set(stats["router"])
        assert {"workers", "respawns", "lanes"} <= set(stats["supervisor"])
