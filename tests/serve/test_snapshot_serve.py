"""Snapshot threading through the serving layer.

The watermark protocol (``log_base`` + retained suffix) at the router level,
service-driven compaction (the satellite bound: mutation logs no longer grow
without limit), crash re-warm from snapshot + suffix under an injected fault,
and durable-session resume from an on-disk snapshot store across service
restarts."""

import asyncio
import pickle

import pytest

from repro.exceptions import SpecificationError
from repro.serve import Mutation, ReasoningService
from repro.serve.router import AffinityRouter, SessionEntry
from repro.session import ReasoningSession
from repro.session.batch import ProblemRequest
from repro.testing.faults import Fault, FaultPlan
from repro.workloads import company

ORDER = {"salary": [("s1", "s3")]}

#: enough committed mutations to cross a threshold of 3 twice
MUTATIONS = [
    Mutation("add_order", args=("Emp", "salary", "s1", "s2")),
    Mutation("add_order", args=("Emp", "salary", "s2", "s3")),
    Mutation("add_order", args=("Emp", "salary", "s1", "s3")),
    Mutation("add_order", args=("Emp", "address", "s1", "s2")),
    Mutation("add_order", args=("Emp", "address", "s2", "s3")),
    Mutation("add_order", args=("Emp", "address", "s1", "s3")),
]


def run(coro):
    return asyncio.run(coro)


def oracle_after(mutations):
    oracle = ReasoningSession(company.company_specification())
    for mutation in mutations:
        mutation.apply(oracle)
    return oracle


async def commit_all(svc, spec, mutations):
    for mutation in mutations:
        answer = await svc.submit(spec, mutation)
        assert answer.ok, answer.error


# --------------------------------------------------------------------------- #
# Router watermark semantics (unit level)
# --------------------------------------------------------------------------- #
class TestSessionEntryWatermark:
    def test_compact_truncates_past_the_watermark(self):
        entry = SessionEntry(0, company.company_specification())
        entry.log.extend(MUTATIONS[:4])
        assert entry.compact(b"snap", 3)
        assert entry.log_base == 3
        assert entry.log == MUTATIONS[3:4]  # only the suffix is retained
        assert entry.total_log_length == 4  # committed count is invariant
        assert entry.snapshot == b"snap"

    def test_stale_probe_cannot_move_the_watermark_backwards(self):
        entry = SessionEntry(0, company.company_specification())
        entry.log.extend(MUTATIONS[:4])
        assert entry.compact(b"new", 3)
        assert not entry.compact(b"old", 2)
        assert not entry.compact(b"same", 3)  # nothing new to fold
        assert entry.log_base == 3 and entry.snapshot == b"new"

    def test_overclaiming_probe_is_an_error(self):
        entry = SessionEntry(0, company.company_specification())
        entry.log.extend(MUTATIONS[:2])
        with pytest.raises(SpecificationError, match="only 2"):
            entry.compact(b"snap", 5)

    def test_restored_entry_needs_its_snapshot(self):
        with pytest.raises(SpecificationError, match="needs the snapshot"):
            SessionEntry(0, company.company_specification(), None, log_base=2)

    def test_twins_join_a_disk_restored_entry_until_it_diverges(self):
        spec = company.company_specification()
        router = AffinityRouter(snapshot_loader=lambda _spec: (b"snap", 3))
        entry = router.entry_for(spec)
        assert entry.log_base == 3 and not entry.mutated
        assert router.snapshot_resumes == 1
        twin = company.company_specification()
        assert router.entry_for(twin) is entry  # blessed base state
        entry.log.append(MUTATIONS[3])  # first NEW mutation: diverged
        assert router.entry_for(company.company_specification()) is not entry


# --------------------------------------------------------------------------- #
# Service-driven compaction
# --------------------------------------------------------------------------- #
class TestCompaction:
    def test_log_growth_is_bounded_and_answers_survive(self):
        spec = company.company_specification()

        async def scenario():
            async with ReasoningService(
                processes=1, retries=0, compact_log_threshold=3
            ) as svc:
                warm = await svc.submit(spec, ProblemRequest("cps"))
                assert warm.ok, warm.error
                await commit_all(svc, spec, MUTATIONS)
                entry = svc._router.entry_for(spec)
                answer = await svc.submit(
                    spec, ProblemRequest("cop", args=("Emp", ORDER))
                )
                return svc.stats(), entry, answer

        stats, entry, answer = run(scenario())
        assert stats["compactions"] >= 2
        # the satellite bound: the retained suffix stays under the threshold
        assert len(entry.log) < 3
        assert entry.log_base + len(entry.log) == len(MUTATIONS)
        assert entry.snapshot is not None
        assert answer.ok and answer.value == oracle_after(MUTATIONS).certain_ordering(
            "Emp", ORDER
        )

    def test_compaction_disabled_keeps_the_full_log(self):
        spec = company.company_specification()

        async def scenario():
            async with ReasoningService(
                processes=1, retries=0, compact_log_threshold=None
            ) as svc:
                await commit_all(svc, spec, MUTATIONS)
                entry = svc._router.entry_for(spec)
                return svc.stats(), entry

        stats, entry = run(scenario())
        assert stats["compactions"] == 0
        assert entry.log_base == 0 and len(entry.log) == len(MUTATIONS)

    def test_threshold_validated(self):
        with pytest.raises(ValueError, match=">= 1"):
            ReasoningService(processes=1, compact_log_threshold=0)

    def test_checkpoint_snapshots_below_the_threshold(self):
        spec = company.company_specification()

        async def scenario():
            async with ReasoningService(
                processes=1, retries=0, compact_log_threshold=None
            ) as svc:
                await commit_all(svc, spec, MUTATIONS[:2])
                forced = await svc.checkpoint(spec)
                entry = svc._router.entry_for(spec)
                return forced, entry

        forced, entry = run(scenario())
        assert forced
        assert entry.log_base == 2 and entry.log == []


# --------------------------------------------------------------------------- #
# Crash re-warm from snapshot + suffix
# --------------------------------------------------------------------------- #
class TestCrashRewarm:
    def test_killed_worker_restores_snapshot_and_replays_the_suffix(self):
        # commit 6 mutations at threshold 3 (two compactions), then kill the
        # worker on a later read: the respawned worker must restore the
        # snapshot and replay exactly the suffix.  Executions before that
        # read: 1 warm read + 6 mutations + 2 snapshot probes = 9.
        plan = FaultPlan.of(
            Fault("worker.execute", "kill", after=len(MUTATIONS) + 3, times=1,
                  generation=0)
        )
        spec = company.company_specification()

        async def scenario():
            async with ReasoningService(
                processes=1, retries=1, compact_log_threshold=3, fault_plan=plan
            ) as svc:
                warm = await svc.submit(spec, ProblemRequest("cps"))
                assert warm.ok, warm.error
                await commit_all(svc, spec, MUTATIONS)
                entry = svc._router.entry_for(spec)
                assert entry.log_base >= 3  # a snapshot exists pre-crash
                # this read trips the kill; the retry lands on the respawn
                answer = await svc.submit(
                    spec, ProblemRequest("cop", args=("Emp", ORDER))
                )
                return answer, svc.stats()

        answer, stats = run(scenario())
        assert stats["supervisor"]["respawns"] == 1
        assert answer.ok, answer.error
        assert answer.attempts == 2
        assert answer.value == oracle_after(MUTATIONS).certain_ordering("Emp", ORDER)


# --------------------------------------------------------------------------- #
# Durable sessions across service restarts
# --------------------------------------------------------------------------- #
class TestDurableResume:
    def test_restart_resumes_folded_mutations_from_disk(self, tmp_path):
        directory = str(tmp_path)
        spec = company.company_specification()

        async def first_life():
            async with ReasoningService(
                processes=1, retries=0, compact_log_threshold=3,
                snapshot_dir=directory,
            ) as svc:
                await commit_all(svc, spec, MUTATIONS)
                entry = svc._router.entry_for(spec)
                return entry.log_base, svc.stats()

        watermark, stats = run(first_life())
        assert watermark >= 3
        assert stats["snapshot_store"]["stores"] >= 1

        async def second_life():
            async with ReasoningService(
                processes=1, retries=0, compact_log_threshold=3,
                snapshot_dir=directory,
            ) as svc:
                twin = company.company_specification()
                entry = svc._router.entry_for(twin)
                answer = await svc.submit(
                    twin, ProblemRequest("cop", args=("Emp", ORDER))
                )
                return entry, answer, svc._router.snapshot_resumes

        entry, answer, resumes = run(second_life())
        assert resumes == 1
        assert entry.log_base == watermark
        assert answer.ok, answer.error
        # exactly the folded-in mutations are durable
        expected = oracle_after(MUTATIONS[:watermark]).certain_ordering("Emp", ORDER)
        assert answer.value == expected

    def test_corrupt_persisted_payload_falls_back_to_cold(self, tmp_path):
        from repro.session.snapshot import SnapshotStore, specification_fingerprint

        directory = str(tmp_path)
        spec = company.company_specification()
        store = SnapshotStore(directory)
        store.store(
            specification_fingerprint(spec), pickle.dumps(("not-an-int", None))
        )

        async def scenario():
            async with ReasoningService(
                processes=1, retries=0, snapshot_dir=directory
            ) as svc:
                entry = svc._router.entry_for(spec)
                answer = await svc.submit(spec, ProblemRequest("cps"))
                return entry, answer

        entry, answer = run(scenario())
        assert entry.log_base == 0 and entry.snapshot is None
        assert answer.ok, answer.error
        assert answer.value == ReasoningSession(
            company.company_specification()
        ).consistent()
