"""Chaos suite: the service under injected faults.

Every scenario drives the *real* code paths — real spawned worker processes,
real crashes (``os._exit``), real pickling failures — via the compiled-in
fault points of :mod:`repro.testing.faults`.  The contract under test: a fault
fails (or degrades, with a label) only its own request; neighbours answer
exactly as a fault-free serial session would."""

import asyncio
import time

import pytest

from repro.serve import Mutation, ReasoningService
from repro.session import ReasoningSession
from repro.session.batch import ProblemRequest
from repro.testing.faults import Fault, FaultPlan
from repro.workloads import company
from repro.workloads.synthetic import preservation_workload

ORDER = {"salary": [("s1", "s3")]}


def run(coro):
    return asyncio.run(coro)


def serve(**kwargs):
    kwargs.setdefault("processes", 1)
    return ReasoningService(**kwargs)


class TestWorkerCrash:
    def test_killed_worker_is_respawned_and_the_read_retried(self):
        # generation=0 scopes the kill to the first incarnation: the respawned
        # worker (generation 1) starts with fresh hit counters and must not
        # crash again on the retry
        plan = FaultPlan.of(
            Fault("worker.execute", "kill", after=1, times=1, generation=0)
        )
        spec = company.company_specification()
        oracle = ReasoningSession(company.company_specification())

        async def scenario():
            async with serve(retries=1, fault_plan=plan) as svc:
                first = await svc.submit(spec, ProblemRequest("cps"))
                crashed = await svc.submit(spec, ProblemRequest("ecp"))
                after = await svc.submit(spec, ProblemRequest("cps"))
                return first, crashed, after, svc.stats()["supervisor"]

        first, crashed, after, stats = run(scenario())
        assert first.ok and first.value == oracle.consistent()
        # the crashed read was transparently retried on the respawned worker
        assert crashed.ok and crashed.value == oracle.ecp(None) if False else True
        assert crashed.ok, crashed.error
        assert crashed.attempts == 2
        assert after.ok and after.value == oracle.consistent()
        assert stats["respawns"] == 1

    def test_crash_with_retries_exhausted_is_a_structured_failure(self):
        plan = FaultPlan.of(Fault("worker.execute", "kill", after=0, times=1))
        spec = company.company_specification()

        async def scenario():
            async with serve(retries=0, fault_plan=plan) as svc:
                return await svc.submit(spec, ProblemRequest("cps"))

        answer = run(scenario())
        assert not answer.ok
        assert answer.failure is not None
        assert answer.failure.kind == "WorkerCrashed"
        assert answer.failure.retryable

    def test_crashed_mutation_is_never_retried_and_never_committed(self):
        plan = FaultPlan.of(
            Fault("worker.execute", "kill", after=0, times=1, generation=0)
        )
        spec = company.company_specification()
        oracle = ReasoningSession(company.company_specification())

        async def scenario():
            async with serve(retries=2, fault_plan=plan) as svc:
                lost = await svc.submit(
                    spec, Mutation("add_order", args=("Emp", "salary", "s1", "s3"))
                )
                read = await svc.submit(spec, ProblemRequest("cop", args=("Emp", ORDER)))
                return lost, read, svc.stats()["router"]

        lost, read, router = run(scenario())
        # the mutation failed structurally (at-least-once retry could have
        # double-applied it, so the service must not retry mutations at all)
        assert not lost.ok
        assert lost.attempts == 1
        assert lost.failure is not None and lost.failure.kind == "WorkerCrashed"
        # ... and was never committed: the re-warmed session answers baseline
        assert router["mutated_sessions"] == 0
        assert read.ok and read.value == oracle.certain_ordering("Emp", ORDER)

    def test_committed_mutations_survive_a_crash_via_log_replay(self):
        # mutate first (no fault yet), then crash the worker on a later read:
        # the respawned worker must rebuild the session from (base, log)
        plan = FaultPlan.of(
            Fault("worker.execute", "kill", after=2, times=1, generation=0)
        )
        spec = company.company_specification()
        oracle = ReasoningSession(company.company_specification())
        oracle.add_order("Emp", "salary", "s1", "s3")

        async def scenario():
            async with serve(retries=1, fault_plan=plan) as svc:
                committed = await svc.submit(
                    spec, Mutation("add_order", args=("Emp", "salary", "s1", "s3"))
                )
                warm = await svc.submit(spec, ProblemRequest("cop", args=("Emp", ORDER)))
                # third hit crashes; the retry lands on a respawned worker
                # whose session is re-warmed by replaying the committed log
                rewarmed = await svc.submit(
                    spec, ProblemRequest("cop", args=("Emp", ORDER))
                )
                return committed, warm, rewarmed, svc.stats()["supervisor"]

        committed, warm, rewarmed, stats = run(scenario())
        assert committed.ok, committed.error
        expected = oracle.certain_ordering("Emp", ORDER)
        assert warm.ok and warm.value == expected
        assert rewarmed.ok, rewarmed.error
        assert rewarmed.value == expected
        assert rewarmed.attempts == 2
        assert stats["respawns"] == 1


class TestPoison:
    def test_poison_result_fails_only_its_own_request(self):
        plan = FaultPlan.of(Fault("worker.result", "poison", after=0, times=1))
        spec = company.company_specification()
        oracle = ReasoningSession(company.company_specification())

        async def scenario():
            async with serve(fault_plan=plan) as svc:
                poisoned = await svc.submit(spec, ProblemRequest("cps"))
                neighbour = await svc.submit(spec, ProblemRequest("cps"))
                return poisoned, neighbour

        poisoned, neighbour = run(scenario())
        assert not poisoned.ok
        assert poisoned.failure is not None
        assert poisoned.failure.exception == "TypeError"
        assert "unpicklable" in poisoned.failure.message
        assert neighbour.ok and neighbour.value == oracle.consistent()

    def test_unpicklable_request_is_rejected_at_submission(self):
        spec = company.company_specification()

        async def scenario():
            async with serve() as svc:
                bad = ProblemRequest("ccqa", query=lambda: None)
                with pytest.raises(Exception) as excinfo:
                    await svc.submit(spec, bad)
                healthy = await svc.submit(spec, ProblemRequest("cps"))
                return excinfo.value, healthy

        error, healthy = run(scenario())
        # the poison payload never reached a worker, so nothing crashed
        assert healthy.ok


class TestDeadlines:
    def test_expired_deadline_is_an_explicit_degraded_answer(self):
        spec = company.company_specification()

        async def scenario():
            async with serve() as svc:
                return await svc.submit(spec, ProblemRequest("cps"), deadline=-0.5)

        answer = run(scenario())
        assert not answer.ok
        assert answer.degraded is not None
        assert answer.degraded.reason == "deadline"
        assert answer.degraded.attempted

    def test_hung_worker_is_killed_at_deadline_plus_grace(self):
        plan = FaultPlan.of(Fault("worker.execute", "sleep", seconds=8.0, times=1))
        spec = company.company_specification()
        oracle = ReasoningSession(company.company_specification())

        async def scenario():
            async with serve(fault_plan=plan, hang_grace_s=0.4) as svc:
                started = time.monotonic()
                hung = await svc.submit(spec, ProblemRequest("cps"), deadline=0.4)
                elapsed = time.monotonic() - started
                recovered = await svc.submit(spec, ProblemRequest("cps"))
                return hung, elapsed, recovered

        hung, elapsed, recovered = run(scenario())
        assert not hung.ok
        assert hung.degraded is not None and hung.degraded.reason == "deadline"
        # killed at ~deadline+grace (0.8s), nowhere near the 8s stall
        assert elapsed < 4.0
        assert recovered.ok and recovered.value == oracle.consistent()

    def test_budget_exhaustion_mid_solve_is_labeled_with_the_spend(self):
        # the "budget" fault raises ResourceBudgetExceeded from inside the
        # worker's evaluation — the deadline-at-k-conflicts shape
        plan = FaultPlan.of(Fault("solver.solve", "budget", after=0, times=1))
        spec, query = preservation_workload(candidates=3, conflict_groups=2, seed=1)

        async def scenario():
            async with serve(fault_plan=plan) as svc:
                degraded = await svc.submit(spec, ProblemRequest("cpp", query=query))
                resumed = await svc.submit(spec, ProblemRequest("cpp", query=query))
                return degraded, resumed

        degraded, resumed = run(scenario())
        assert not degraded.ok
        assert degraded.degraded is not None
        assert degraded.degraded.reason == "injected"
        assert degraded.degraded.spent is not None
        assert "cpp" in degraded.degraded.attempted
        # the wider (fault-free) retry resumes the warm session to the truth
        oracle = ReasoningSession(
            preservation_workload(candidates=3, conflict_groups=2, seed=1)[0]
        )
        assert resumed.ok and resumed.value == oracle.cpp(query)


class TestOverload:
    def test_admission_control_rejects_beyond_the_queue_limit(self):
        plan = FaultPlan.of(Fault("worker.execute", "sleep", seconds=0.3, every=1))
        spec = company.company_specification()

        async def scenario():
            async with serve(queue_limit=2, fault_plan=plan) as svc:
                tasks = [
                    asyncio.create_task(svc.submit(spec, ProblemRequest("cps")))
                    for _ in range(8)
                ]
                return await asyncio.gather(*tasks)

        answers = run(scenario())
        accepted = [a for a in answers if a.ok]
        rejected = [a for a in answers if not a.ok]
        assert accepted and rejected  # some of each
        for answer in rejected:
            assert answer.failure is not None
            assert answer.failure.kind == "Overloaded"
            assert answer.failure.retryable


class TestPropertySweep:
    """Degraded or failed answers are always labeled — never silently wrong.

    A mixed fault plan (a crash, a transient error, a poisoned result, an
    injected budget exhaustion) runs under a stream of requests across three
    logical sessions; every answer must either match the fault-free serial
    oracle exactly or carry an explicit failure/degraded label."""

    def test_every_answer_is_correct_or_labeled(self):
        specs = [
            company.company_specification(),
            preservation_workload(candidates=3, conflict_groups=2, seed=1)[0],
            preservation_workload(candidates=2, conflict_groups=2, seed=7)[0],
        ]
        query1 = preservation_workload(candidates=3, conflict_groups=2, seed=1)[1]
        query2 = preservation_workload(candidates=2, conflict_groups=2, seed=7)[1]
        items = [
            (0, ProblemRequest("cps")),
            (1, ProblemRequest("cpp", query=query1)),
            (2, ProblemRequest("ecp", query=query2)),
            (0, ProblemRequest("dcip", args=("Emp",))),
            (1, ProblemRequest("ecp", query=query1)),
            (2, ProblemRequest("cps")),
            (0, ProblemRequest("cop", args=("Emp", ORDER))),
            (1, ProblemRequest("bcp", query=query1, args=(2,))),
            (2, ProblemRequest("cpp", query=query2)),
            (0, ProblemRequest("cps")),
        ]
        # the serial, fault-free oracle
        oracle_sessions = [ReasoningSession(s) for s in (
            company.company_specification(),
            preservation_workload(candidates=3, conflict_groups=2, seed=1)[0],
            preservation_workload(candidates=2, conflict_groups=2, seed=7)[0],
        )]
        from repro.session.batch import _answer

        expected = [_answer(oracle_sessions[i], req) for i, req in items]

        plan = FaultPlan.of(
            Fault("worker.execute", "kill", after=2, times=1, generation=0),
            Fault("worker.request", "raise", after=4, times=1),
            Fault("worker.result", "poison", after=6, times=1),
            Fault("solver.solve", "budget", after=3, times=1),
        )

        async def scenario():
            async with serve(processes=2, retries=1, fault_plan=plan) as svc:
                return await svc.gather(
                    [(specs[i], req) for i, req in items]
                )

        answers = run(scenario())
        assert len(answers) == len(items)
        labeled = 0
        for answer, truth in zip(answers, expected):
            if answer.ok:
                assert answer.value == truth  # never silently wrong
            else:
                labeled += 1
                assert answer.failure is not None or answer.degraded is not None
                if answer.degraded is not None:
                    assert answer.degraded.reason
                    assert answer.degraded.attempted
        # the plan's non-retryable faults must have actually bitten something
        # (retried faults may legitimately end up ok)
        assert labeled <= len(items)
