"""End-to-end reproduction of the paper's worked examples (Sections 1–4).

Each test cites the example it reproduces; EXPERIMENTS.md records the mapping.
"""

import pytest

from repro.core.current import current_database
from repro.preservation.cpp import find_violating_extension, is_currency_preserving
from repro.preservation.ecp import currency_preserving_extension_exists
from repro.preservation.extensions import apply_imports, candidate_imports
from repro.reasoning.ccqa import certain_current_answers
from repro.reasoning.cop import certain_ordering
from repro.reasoning.cps import is_consistent
from repro.reasoning.dcip import is_deterministic
from repro.workloads import company


class TestExample11And25:
    """Example 1.1 / 2.5: the four queries and their certain current answers."""

    @pytest.mark.parametrize(
        "name, expected",
        [
            ("Q1", {(80,)}),
            ("Q2", {("Dupont",)}),
            ("Q3", {("6 Main St",)}),
            ("Q4", {(6000,)}),
        ],
    )
    def test_certain_answers(self, company_spec, paper_queries, name, expected):
        assert certain_current_answers(paper_queries[name], company_spec) == frozenset(expected)


class TestExample22:
    """Example 2.2: ≺-compatibility of the copy function ρ."""

    def test_compatible_with_empty_orders(self):
        rho = company.dept_copy_function()
        assert rho.is_compatible(company.dept_instance(), company.emp_instance())

    def test_incompatible_with_reversed_orders(self):
        rho = company.dept_copy_function()
        emp, dept = company.emp_instance(), company.dept_instance()
        emp.add_order("address", "s1", "s3")
        dept.add_order("mgrAddr", "t3", "t1")
        assert not rho.is_compatible(dept, emp)


class TestExample23And24:
    """Example 2.3 / 2.4: consistency of S0 and current instances of D^c_0."""

    def test_s0_is_consistent(self, company_spec):
        assert is_consistent(company_spec)

    def test_s0_with_conflicting_budget_copy_is_inconsistent(self):
        from repro.core.copy_function import CopyFunction, CopySignature
        from repro.core.instance import TemporalInstance
        from repro.core.schema import RelationSchema

        spec = company.company_specification()
        src_schema = RelationSchema("Src", ("budget",), eid="dname")
        src = TemporalInstance.from_rows(
            src_schema,
            {"x1": {"dname": "R&D", "budget": 6500}, "x3": {"dname": "R&D", "budget": 6000}},
            orders={"budget": [("x3", "x1")]},
        )
        spec.instances["Src"] = src
        spec.constraints.setdefault("Src", [])
        spec.add_copy_function(
            CopyFunction(
                "rho1",
                CopySignature(company.dept_schema(), ("budget",), src_schema, ("budget",)),
                target="Dept", source="Src", mapping={"t1": "x1", "t3": "x3"},
            )
        )
        assert not is_consistent(spec)

    def test_dc0_current_instances(self, company_spec):
        emp = company_spec.instance("Emp").copy()
        dept = company_spec.instance("Dept").copy()
        for attribute in emp.schema.attributes:
            emp.add_order(attribute, "s1", "s2")
            emp.add_order(attribute, "s2", "s3")
        for attribute in dept.schema.attributes:
            dept.add_order(attribute, "t1", "t2")
            dept.add_order(attribute, "t2", "t4")
            dept.add_order(attribute, "t4", "t3")
        assert company_spec.is_consistent_completion({"Emp": emp, "Dept": dept})
        lst = current_database({"Emp": emp, "Dept": dept})
        assert len(lst["Emp"]) == 3
        assert lst["Dept"].value_set() == {("R&D", "Mary", "Dupont", "6 Main St", 6000)}

    def test_example_2_4_merged_entity_mixes_attributes(self):
        """If s4 and s5 referred to the same person, the current tuple mixes
        attributes of both (Robert/Luth/8 Drum St/80/married)."""
        from repro.core.current import current_tuple
        from repro.core.instance import TemporalInstance

        schema = company.emp_schema()
        merged = TemporalInstance(schema)
        for tup in company.emp_instance().tuples():
            if tup.tid in ("s4", "s5"):
                values = tup.values()
                values["EID"] = "e_bob_robert"
                from repro.core.tuples import RelationTuple

                merged.add(RelationTuple(schema, tup.tid, values))
        for attribute in ("FN", "LN", "address", "status"):
            merged.add_order(attribute, "s4", "s5")
        merged.add_order("salary", "s5", "s4")
        lst = current_tuple(merged, "e_bob_robert")
        assert lst.values() == {
            "EID": "e_bob_robert", "FN": "Robert", "LN": "Luth",
            "address": "8 Drum St", "salary": 80, "status": "married",
        }


class TestExample32And33:
    """Example 3.2 (certain ordering) and 3.3 (deterministic current instance)."""

    def test_salary_ordering_is_certain(self, company_spec):
        assert certain_ordering(company_spec, "Emp", {"salary": [("s1", "s3")]})

    def test_mgrfn_ordering_is_not_certain(self, company_spec):
        assert not certain_ordering(company_spec, "Dept", {"mgrFN": [("t3", "t4")]})

    def test_emp_is_deterministic_for_current_instances(self, company_spec):
        assert is_deterministic(company_spec, "Emp")


class TestExample41:
    """Example 4.1: currency preservation with the Mgr relation of Figure 3."""

    def test_s1_is_consistent(self, manager_spec):
        assert is_consistent(manager_spec)

    def test_rho_is_not_currency_preserving_for_q2(self, manager_spec, paper_queries):
        assert not is_currency_preserving(paper_queries["Q2"], manager_spec)

    def test_extension_changes_q2_to_smith(self, manager_spec, paper_queries):
        q2 = paper_queries["Q2"]
        assert certain_current_answers(q2, manager_spec) == frozenset({("Dupont",)})
        [m3] = [c for c in candidate_imports(manager_spec) if c.source_tid == "m3"]
        extended = apply_imports(manager_spec, [m3])
        assert certain_current_answers(q2, extended.specification) == frozenset({("Smith",)})

    def test_rho1_is_currency_preserving(self, manager_spec, paper_queries):
        [m3] = [c for c in candidate_imports(manager_spec) if c.source_tid == "m3"]
        extended = apply_imports(manager_spec, [m3])
        assert is_currency_preserving(paper_queries["Q2"], extended.specification)

    def test_violating_extension_witness(self, manager_spec, paper_queries):
        witness = find_violating_extension(paper_queries["Q2"], manager_spec)
        assert witness is not None and witness.size_increase >= 1

    def test_ecp_holds_for_s1(self, manager_spec, paper_queries):
        assert currency_preserving_extension_exists(paper_queries["Q2"], manager_spec)
