"""Shared fixtures for the test suite.

The ``src`` layout is added to ``sys.path`` so the tests run even when the
package has not been installed (offline environments without the ``wheel``
package cannot perform PEP 660 editable installs).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.core import (
    CurrencyAtom,
    DenialConstraint,
    PartialOrder,
    RelationSchema,
    RelationTuple,
    TemporalInstance,
)
from repro.workloads import company


@pytest.fixture()
def emp_schema():
    return company.emp_schema()


@pytest.fixture()
def emp_instance():
    return company.emp_instance()


@pytest.fixture()
def company_spec():
    return company.company_specification()


@pytest.fixture()
def company_spec_literal():
    return company.company_specification(include_status_semantics=False)


@pytest.fixture()
def manager_spec():
    return company.manager_specification()


@pytest.fixture()
def paper_queries():
    return company.paper_queries()


@pytest.fixture()
def pair_schema():
    """A tiny two-attribute schema used by many unit tests."""
    return RelationSchema("R", ("A", "B"))


@pytest.fixture()
def two_entity_instance(pair_schema):
    """Two entities with two tuples each and no initial currency orders."""
    rows = {
        "t1": {"EID": "e1", "A": 1, "B": 10},
        "t2": {"EID": "e1", "A": 2, "B": 20},
        "u1": {"EID": "e2", "A": 3, "B": 30},
        "u2": {"EID": "e2", "A": 4, "B": 40},
    }
    return TemporalInstance.from_rows(pair_schema, rows)


#: every solver backend the differential sweeps should try; optional engines
#: skip cleanly (per backend, not per test run) when their library is absent
KNOWN_BACKENDS = ("reference", "pysat")


@pytest.fixture(scope="session", params=KNOWN_BACKENDS)
def backend(request):
    """Each registered solver backend in turn (session-scoped so the
    hypothesis harnesses can share it without the function-scoped-fixture
    health check firing); unregistered optional backends are skipped."""
    from repro.solvers.backend import available_backends

    if request.param not in available_backends():
        pytest.skip(f"solver backend {request.param!r} is not installed")
    return request.param
