"""Edge-case regression tests for the SAT-encoded preservation layer."""

import pytest

from repro.core.copy_function import CopyFunction, CopySignature
from repro.core.denial import AttrRef, Comparison, CurrencyAtom, DenialConstraint
from repro.core.instance import TemporalInstance
from repro.core.schema import RelationSchema
from repro.core.specification import Specification
from repro.core.tuples import RelationTuple
from repro.exceptions import InconsistentSpecificationError, SpecificationError
from repro.preservation.bcp import (
    bound_violation_core,
    bounded_currency_preserving_extension,
    has_bounded_extension,
)
from repro.preservation.cpp import find_violating_extension, is_currency_preserving
from repro.preservation.ecp import currency_preserving_extension_exists, maximal_extension
from repro.preservation.extensions import apply_imports, candidate_imports
from repro.preservation.sat_extensions import ExtensionSearchSpace, space_for
from repro.query.engine import QueryEngine
from repro.reasoning.ccqa import certain_current_answers
from repro.workloads import company
from repro.workloads.synthetic import preservation_workload


# --------------------------------------------------------------------------- #
# Helper specifications
# --------------------------------------------------------------------------- #
def _inconsistent_spec():
    """Two tuples forced to precede each other by an up/down constraint pair."""
    schema = RelationSchema("R", ("A",))
    instance = TemporalInstance.from_rows(
        schema, {"t1": {"EID": "e", "A": 1}, "t2": {"EID": "e", "A": 2}}
    )
    constraints = [
        DenialConstraint(
            schema, ("s", "t"),
            [Comparison(AttrRef("s", "A"), op, AttrRef("t", "A"))],
            CurrencyAtom("t", "A", "s"), name=name,
        )
        for op, name in ((">", "up"), ("<", "down"))
    ]
    return Specification({"R": instance}, {"R": constraints})


def _already_total_spec():
    """Target/source pair whose currency orders are already total."""
    s_schema = RelationSchema("S", ("A",))
    t_schema = RelationSchema("T", ("A",))
    source = TemporalInstance.from_rows(
        s_schema,
        {"s1": {"EID": "e", "A": 1}, "s2": {"EID": "e", "A": 2}},
    )
    target = TemporalInstance.from_rows(
        t_schema,
        {"t1": {"EID": "e", "A": 1}, "t2": {"EID": "e", "A": 3}},
    )
    source.add_order("A", "s1", "s2")
    target.add_order("A", "t1", "t2")
    copy_function = CopyFunction(
        "rho", CopySignature(t_schema, ("A",), s_schema, ("A",)),
        target="T", source="S", mapping={"t1": "s1"},
    )
    return Specification({"S": source, "T": target}, copy_functions=[copy_function])


def _chained_spec():
    """R0 → R1 → R2 with full-coverage signatures: imports into R1 create
    candidate imports for R1 → R2 that do not exist in the base."""
    schemas = [RelationSchema(f"C{i}", ("A",)) for i in range(3)]
    r0 = TemporalInstance.from_rows(
        schemas[0], {"c0_0": {"EID": "e", "A": 0}, "c0_1": {"EID": "e", "A": 1}}
    )
    r1 = TemporalInstance.from_rows(schemas[1], {"c1_0": {"EID": "e", "A": 0}})
    r2 = TemporalInstance.from_rows(schemas[2], {"c2_0": {"EID": "e", "A": 0}})
    cf0 = CopyFunction(
        "rho0", CopySignature(schemas[1], ("A",), schemas[0], ("A",)),
        target="C1", source="C0", mapping={"c1_0": "c0_0"},
    )
    cf1 = CopyFunction(
        "rho1", CopySignature(schemas[2], ("A",), schemas[1], ("A",)),
        target="C2", source="C1", mapping={"c2_0": "c1_0"},
    )
    return Specification({"C0": r0, "C1": r1, "C2": r2}, copy_functions=[cf0, cf1])


# --------------------------------------------------------------------------- #
# Empty Ext(ρ) and zero candidate imports
# --------------------------------------------------------------------------- #
class TestEmptyExtensionSpace:
    def test_non_covering_copy_function_has_no_candidates(self, company_spec):
        # ρ of Example 2.2 covers only mgrAddr, so it cannot be extended
        space = ExtensionSearchSpace(company_spec)
        assert space.candidates == []
        assert not space.has_chained_candidates

    def test_cpp_vacuously_preserving(self, company_spec):
        q1 = company.paper_queries()["Q1"]
        assert is_currency_preserving(q1, company_spec, method="sat")
        assert find_violating_extension(q1, company_spec, search="sat") is None

    def test_only_the_empty_selection_is_enumerated(self, company_spec):
        space = ExtensionSearchSpace(company_spec)
        assert list(space.iterate_consistent_selections()) == [()]

    def test_all_sources_already_imported(self):
        spec = _already_total_spec()
        # import the single remaining candidate (s2) so nothing is left
        [candidate] = candidate_imports(spec)
        extended = apply_imports(spec, [candidate]).specification
        space = ExtensionSearchSpace(extended)
        assert space.candidates == []
        assert maximal_extension(extended, search="sat").size_increase == 0

    def test_maximal_extension_of_unextendable_spec_is_empty(self, company_spec):
        for search in ("sat", "naive"):
            assert maximal_extension(company_spec, search=search).size_increase == 0


# --------------------------------------------------------------------------- #
# Bound k = 0 and inconsistent bases
# --------------------------------------------------------------------------- #
class TestBoundaryBounds:
    def test_k0_equals_base_cpp(self, manager_spec):
        queries = company.paper_queries()
        for name in ("Q1", "Q2"):
            assert has_bounded_extension(queries[name], manager_spec, k=0, search="sat") == \
                is_currency_preserving(queries[name], manager_spec, method="sat")

    def test_k0_witness_is_the_empty_extension(self, manager_spec):
        q1 = company.paper_queries()["Q1"]
        witness = bounded_currency_preserving_extension(q1, manager_spec, k=0, search="sat")
        assert witness is not None and witness.size_increase == 0

    def test_negative_k_rejected(self, manager_spec):
        q2 = company.paper_queries()["Q2"]
        for search in ("sat", "naive"):
            with pytest.raises(SpecificationError):
                has_bounded_extension(q2, manager_spec, k=-1, search=search)

    def test_inconsistent_base(self):
        spec = _inconsistent_spec()
        query_schema = spec.instance("R").schema
        from repro.query.ast import SPQuery

        query = SPQuery("R", query_schema, ["A"])
        space = ExtensionSearchSpace(spec)
        assert not space.selection_consistent(())
        assert not currency_preserving_extension_exists(query, spec, space=space)
        assert not is_currency_preserving(query, spec, method="sat")
        with pytest.raises(InconsistentSpecificationError):
            find_violating_extension(query, spec, search="sat")
        assert bounded_currency_preserving_extension(query, spec, 1, search="sat") is None


# --------------------------------------------------------------------------- #
# Already-total specifications
# --------------------------------------------------------------------------- #
class TestAlreadyTotal:
    def test_certain_answers_and_cpp(self):
        spec = _already_total_spec()
        from repro.query.ast import SPQuery

        query = SPQuery("T", spec.instance("T").schema, ["A"])
        space = ExtensionSearchSpace(spec)
        engine = QueryEngine(query)
        assert space.certain_answers(engine, ()) == certain_current_answers(
            query, spec, method="candidates"
        )
        assert is_currency_preserving(query, spec, method="sat") == \
            is_currency_preserving(query, spec, method="enumerate")


# --------------------------------------------------------------------------- #
# Duplicate-import dedup in apply_imports
# --------------------------------------------------------------------------- #
class TestDuplicateImports:
    def test_duplicates_are_deduplicated(self, manager_spec):
        [candidate] = [c for c in candidate_imports(manager_spec) if c.source_tid == "m3"]
        extension = apply_imports(manager_spec, [candidate, candidate, candidate])
        assert extension.imports == (candidate,)
        assert extension.size_increase == 1
        emp = extension.specification.instance("Emp")
        assert len(emp) == len(manager_spec.instance("Emp")) + 1
        [cf] = extension.specification.copy_functions
        assert cf(candidate.new_tid()) == "m3"


# --------------------------------------------------------------------------- #
# Chained copy functions (imports create new candidates)
# --------------------------------------------------------------------------- #
class TestChainedCandidates:
    def test_chain_is_detected(self):
        spec = _chained_spec()
        space = ExtensionSearchSpace(spec)
        assert space.has_chained_candidates

    def test_bcp_agrees_with_naive_on_chained_spec(self):
        spec = _chained_spec()
        from repro.query.ast import SPQuery

        query = SPQuery("C2", spec.instance("C2").schema, ["A"])
        for k in (0, 1, 2):
            assert has_bounded_extension(query, spec, k, search="sat") == \
                has_bounded_extension(query, spec, k, method="enumerate", search="naive")

    def test_imports_create_new_candidates(self):
        spec = _chained_spec()
        base_candidates = len(candidate_imports(spec))
        space = ExtensionSearchSpace(spec)
        # import c0_1 into C1; the imported tuple becomes importable into C2
        [index] = [
            i for i, c in enumerate(space.candidates) if c.copy_function == "rho0"
            and c.source_tid == "c0_1"
        ]
        extended = space.extension((index,)).specification
        assert len(candidate_imports(extended)) > base_candidates - 1


    def test_chained_flag_is_exact_not_structural(self):
        """A chaining copy-function *graph* whose chained source has nothing
        importable must not be flagged (the old over-approximation routed such
        specs to the slow per-extension path)."""
        schemas = [RelationSchema(f"C{i}", ("A",)) for i in range(3)]
        # C0 fully imported into C1 already; C1 has one unmapped tuple for C2
        r0 = TemporalInstance.from_rows(schemas[0], {"c0_0": {"EID": "e", "A": 0}})
        r1 = TemporalInstance.from_rows(
            schemas[1], {"c1_0": {"EID": "e", "A": 0}, "c1_1": {"EID": "e", "A": 1}}
        )
        r2 = TemporalInstance.from_rows(schemas[2], {"c2_0": {"EID": "e", "A": 0}})
        cf0 = CopyFunction(
            "rho0", CopySignature(schemas[1], ("A",), schemas[0], ("A",)),
            target="C1", source="C0", mapping={"c1_0": "c0_0"},
        )
        cf1 = CopyFunction(
            "rho1", CopySignature(schemas[2], ("A",), schemas[1], ("A",)),
            target="C2", source="C1", mapping={"c2_0": "c1_0"},
        )
        spec = Specification({"C0": r0, "C1": r1, "C2": r2}, copy_functions=[cf0, cf1])
        from repro.preservation.extensions import could_chain

        assert could_chain(spec)  # the graph could chain ...
        space = ExtensionSearchSpace(spec)
        assert space.candidates  # ... and candidates exist (c1_1 into C2) ...
        assert not space.has_chained_candidates  # ... but none is derived
        assert space.prerequisites == {}

    def test_cpp_needs_the_full_chain(self):
        """The spoiler payload only reaches the query relation through a chain
        of derived imports — a base-candidate-only search cannot see it."""
        from repro.workloads.synthetic import chained_preservation_workload

        spec, query = chained_preservation_workload(
            depth=2, candidates=1, spoiler=True, seed=0
        )
        space = ExtensionSearchSpace(spec)
        witness = find_violating_extension(query, spec, search="sat", space=space)
        assert witness is not None
        assert witness.size_increase == 2  # the whole chain
        assert any(imp.copy_function == "rho_1" for imp in witness.imports)
        # BCP flips exactly at k = depth
        assert not has_bounded_extension(query, spec, 1, search="sat", space=space)
        assert has_bounded_extension(query, spec, 2, search="sat", space=space)

    def test_maximal_harvest_limit_applies_to_the_single_maximum_case(self):
        """Regression: the early return for 'every candidate imported'
        bypassed the harvest limit, so limit=0 still produced a maximum."""
        from repro.workloads.synthetic import chained_preservation_workload

        spec, _query = chained_preservation_workload(
            depth=2, candidates=2, entities=1, spoiler=True, seed=7
        )
        space = ExtensionSearchSpace(spec)
        assert space.maximal_consistent_selections(limit=0) is None
        maxima = space.maximal_consistent_selections(limit=1)
        assert maxima == [tuple(range(len(space.candidates)))]

    def test_family_cap_falls_back_to_lazy_sweeps(self, monkeypatch):
        """Oversized consistent families degrade to streamed restricted
        sweeps (time-bounded, memory-safe) with identical verdicts and still
        zero fresh space constructions."""
        from repro.session import session as session_module
        from repro.workloads.synthetic import chained_preservation_workload

        spec, query = chained_preservation_workload(
            depth=2, candidates=2, entities=1, spoiler=True, seed=3
        )
        space = ExtensionSearchSpace(spec)
        engine = QueryEngine(query)
        expected = [
            has_bounded_extension(query, spec, k, search="sat", space=space, engine=engine)
            for k in (0, 1, 2, 3)
        ]
        monkeypatch.setattr(session_module, "_FAMILY_CAP", 0)
        before = ExtensionSearchSpace.constructions
        got = [
            has_bounded_extension(query, spec, k, search="sat", space=space, engine=engine)
            for k in (0, 1, 2, 3)
        ]
        assert got == expected == [False, False, True, True]
        assert ExtensionSearchSpace.constructions == before

    def test_bcp_constructs_no_fresh_space(self):
        """Acceptance: zero fresh ExtensionSearchSpace constructions inside a
        chained BCP decision (the pre-closure code re-encoded per guess)."""
        from repro.workloads.synthetic import chained_preservation_workload

        spec, query = chained_preservation_workload(
            depth=2, candidates=2, spoiler=True, seed=3
        )
        space = ExtensionSearchSpace(spec)
        assert space.has_chained_candidates
        engine = QueryEngine(query)
        before = ExtensionSearchSpace.constructions
        for k in (0, 1, 2, 3):
            has_bounded_extension(query, spec, k, search="sat", space=space, engine=engine)
        assert ExtensionSearchSpace.constructions == before
        assert space.stats()["constructions"] == before


# --------------------------------------------------------------------------- #
# Answer-difference certificates
# --------------------------------------------------------------------------- #
class TestCertificates:
    def test_lost_answer_certificate_on_example_41(self, manager_spec):
        q2 = company.paper_queries()["Q2"]
        for search in ("sat", "naive"):
            witness = find_violating_extension(q2, manager_spec, search=search)
            assert witness is not None
            certificate = witness.certificate
            assert certificate is not None
            assert certificate.answer == ("Dupont",)
            assert not certificate.gained  # Dupont was certain, the import loses it
            assert certificate.completion_of == "extension"
            engine = QueryEngine(q2)
            assert certificate.refutes_certainty(engine)
            # the completion is restricted to the relations the query reads
            assert set(certificate.completion) == set(engine.relations)

    def test_chained_witness_carries_certificate(self):
        from repro.workloads.synthetic import chained_preservation_workload

        spec, query = chained_preservation_workload(
            depth=3, candidates=1, spoiler=True, seed=2
        )
        witness = find_violating_extension(query, spec, search="sat")
        assert witness is not None and witness.size_increase == 3
        certificate = witness.certificate
        assert certificate.answer == ((100,) if not certificate.gained else (101,))
        assert certificate.refutes_certainty(QueryEngine(query))

    def test_no_witness_means_no_certificate_to_check(self, manager_spec):
        q1 = company.paper_queries()["Q1"]
        assert find_violating_extension(q1, manager_spec, search="sat") is None


# --------------------------------------------------------------------------- #
# Bound-violation reporting (analyze_final through the space)
# --------------------------------------------------------------------------- #
class TestBoundViolationCore:
    def test_conflicting_imports_named_regardless_of_bound(self):
        spec, _query = preservation_workload(candidates=4, conflict_groups=2, seed=3)
        space = ExtensionSearchSpace(spec)
        by_group = {}
        for candidate in space.candidates:
            source = spec.instance("R0").tuple_by_tid(candidate.source_tid)
            by_group.setdefault(source["a1"], []).append(candidate)
        groups = sorted(by_group)
        clashing = [by_group[groups[0]][0], by_group[groups[1]][0]]
        result = bound_violation_core(spec, clashing, k=4, space=space)
        assert result is not None
        imports, bound_hit = result
        assert set(imports) == set(clashing)
        assert not bound_hit  # inconsistent regardless of the bound

    def test_bound_participates_for_compatible_imports(self):
        spec, _query = preservation_workload(candidates=4, conflict_groups=2, seed=3)
        space = ExtensionSearchSpace(spec)
        by_group = {}
        for candidate in space.candidates:
            source = spec.instance("R0").tuple_by_tid(candidate.source_tid)
            by_group.setdefault(source["a1"], []).append(candidate)
        same_group = next(g for g in by_group.values() if len(g) >= 2)[:2]
        result = bound_violation_core(spec, same_group, k=1, space=space)
        assert result is not None
        imports, bound_hit = result
        assert bound_hit
        assert bound_violation_core(spec, same_group, k=2, space=space) is None

    def test_unknown_import_rejected(self, manager_spec):
        from repro.preservation.extensions import CandidateImport

        with pytest.raises(SpecificationError):
            bound_violation_core(manager_spec, [CandidateImport("nope", "x", "e")], k=1)


# --------------------------------------------------------------------------- #
# Space validation and reuse
# --------------------------------------------------------------------------- #
class TestSpaceReuse:
    def test_space_for_rejects_mismatches(self, manager_spec, company_spec):
        space = ExtensionSearchSpace(manager_spec)
        with pytest.raises(SpecificationError):
            space_for(company_spec, True, space)
        with pytest.raises(SpecificationError):
            space_for(manager_spec, False, space)
        assert space_for(manager_spec, True, space) is space

    def test_space_for_accepts_rebuilt_identical_specification(self, manager_spec):
        """Regression: ``space_for`` compared by object identity, so a caller
        that rebuilt a value-identical specification lost the warm solver."""
        space = ExtensionSearchSpace(manager_spec)
        rebuilt = company.manager_specification()
        assert rebuilt is not manager_spec
        assert space_for(rebuilt, True, space) is space
        # and equal verdicts flow through the reused space
        q2 = company.paper_queries()["Q2"]
        assert not is_currency_preserving(q2, rebuilt, method="sat", space=space)

    def test_space_for_still_rejects_structural_differences(self, manager_spec):
        modified = company.manager_specification()
        schema = modified.instance("Mgr").schema
        from repro.core.tuples import RelationTuple

        extra = modified.instance("Mgr").tuples()[0]
        modified.instance("Mgr").add(
            RelationTuple(schema, "m_extra", {**extra.values(), schema.eid: extra.eid})
        )
        space = ExtensionSearchSpace(manager_spec)
        with pytest.raises(SpecificationError):
            space_for(modified, True, space)

    def test_one_space_serves_cpp_ecp_and_bcp(self, manager_spec):
        q2 = company.paper_queries()["Q2"]
        space = ExtensionSearchSpace(manager_spec)
        engine = QueryEngine(q2)
        assert not is_currency_preserving(q2, manager_spec, method="sat", space=space, engine=engine)
        assert currency_preserving_extension_exists(q2, manager_spec, space=space)
        assert maximal_extension(manager_spec, space=space).size_increase == 2
        witness = bounded_currency_preserving_extension(
            q2, manager_spec, 1, search="sat", space=space, engine=engine
        )
        assert witness is not None and witness.size_increase == 1
        assert any(imp.source_tid == "m3" for imp in witness.imports)

    def test_interleaved_enumerations_do_not_interfere(self, manager_spec):
        space = ExtensionSearchSpace(manager_spec)
        first = space.iterate_consistent_selections()
        second = space.iterate_consistent_selections()
        collected_first = {next(first), next(first)}
        collected_second = set(second)  # exhaust while `first` is mid-pass
        collected_first.update(first)
        assert {frozenset(s) for s in collected_first} == {frozenset(s) for s in collected_second}
