"""Tests for extension enumeration (Ext(ρ)) and the candidate closure."""

import pytest

from repro.core.copy_function import CopyFunction, CopySignature
from repro.core.instance import TemporalInstance
from repro.core.schema import RelationSchema
from repro.exceptions import SpecificationError
from repro.core.specification import Specification
from repro.preservation.extensions import (
    CandidateImport,
    apply_imports,
    candidate_closure,
    candidate_imports,
    could_chain,
    enumerate_extensions,
)
from repro.reasoning.cps import is_consistent
from repro.workloads import company
from repro.workloads.synthetic import chained_preservation_workload


class TestCandidateImports:
    def test_manager_spec_candidates(self, manager_spec):
        candidates = candidate_imports(manager_spec)
        # m2 is already imported (ρ(s3) = m2); m1 and m3 remain
        assert {(c.source_tid, c.target_eid) for c in candidates} == {
            ("m1", company.MARY),
            ("m3", company.MARY),
        }

    def test_company_spec_has_no_extendable_copy_function(self, company_spec):
        # ρ of Example 2.2 covers only mgrAddr, so it cannot be extended
        assert candidate_imports(company_spec) == []

    def test_match_entities_by_eid_toggle(self, manager_spec):
        liberal = candidate_imports(manager_spec, match_entities_by_eid=False)
        strict = candidate_imports(manager_spec, match_entities_by_eid=True)
        assert len(liberal) >= len(strict)
        # Emp has three entities, so each Mgr tuple may target each of them
        assert len(liberal) == 3 * 3 - 1  # minus the already-imported (m2, Mary)

    def test_copy_function_name_filter(self, manager_spec):
        assert candidate_imports(manager_spec, copy_function_names=["nonexistent"]) == []


class TestApplyImports:
    def test_new_tuple_added_with_copied_values(self, manager_spec):
        [candidate] = [c for c in candidate_imports(manager_spec) if c.source_tid == "m3"]
        extension = apply_imports(manager_spec, [candidate])
        emp = extension.specification.instance("Emp")
        assert len(emp) == len(manager_spec.instance("Emp")) + 1
        new_tuple = emp.tuple_by_tid(candidate.new_tid())
        assert new_tuple["LN"] == "Smith"
        assert new_tuple["status"] == "divorced"
        assert new_tuple.eid == company.MARY

    def test_copy_function_extended(self, manager_spec):
        [candidate] = [c for c in candidate_imports(manager_spec) if c.source_tid == "m3"]
        extension = apply_imports(manager_spec, [candidate])
        [cf] = extension.specification.copy_functions
        assert cf(candidate.new_tid()) == "m3"
        assert cf("s3") == "m2"  # the original mapping is preserved
        assert extension.size_increase == 1

    def test_base_specification_untouched(self, manager_spec):
        before = len(manager_spec.instance("Emp"))
        [candidate] = [c for c in candidate_imports(manager_spec) if c.source_tid == "m1"]
        apply_imports(manager_spec, [candidate])
        assert len(manager_spec.instance("Emp")) == before

    def test_extended_specification_remains_consistent(self, manager_spec):
        for candidate in candidate_imports(manager_spec):
            extension = apply_imports(manager_spec, [candidate])
            assert is_consistent(extension.specification)

    def test_unknown_copy_function_rejected(self, manager_spec):
        from repro.preservation.extensions import CandidateImport

        with pytest.raises(SpecificationError):
            apply_imports(manager_spec, [CandidateImport("nope", "m1", company.MARY)])

    def test_empty_extension_describes_itself(self, manager_spec):
        extension = apply_imports(manager_spec, [])
        assert extension.describe() == "(no imports)"
        assert extension.size_increase == 0


class TestStructuredTids:
    def test_new_tid_is_collision_free(self):
        """The old ``"import::{cf}::{tid}::{eid}"`` f-string merged these two
        distinct imports into one tuple id."""
        first = CandidateImport("cf", "a::b", "c")
        second = CandidateImport("cf", "a", "b::c")
        assert f"import::cf::{first.source_tid}::{first.target_eid}" == \
            f"import::cf::{second.source_tid}::{second.target_eid}"
        assert first.new_tid() != second.new_tid()

    def test_colliding_imports_create_two_tuples(self):
        schema_s = RelationSchema("S", ("A",))
        schema_t = RelationSchema("T", ("A",))
        source = TemporalInstance.from_rows(
            schema_s,
            {"x::y": {"EID": "e", "A": 1}, "x": {"EID": "e", "A": 2}},
        )
        target = TemporalInstance.from_rows(schema_t, {"t0": {"EID": "e", "A": 0}})
        copy_function = CopyFunction(
            "rho", CopySignature(schema_t, ("A",), schema_s, ("A",)),
            target="T", source="S",
        )
        spec = Specification({"S": source, "T": target}, copy_functions=[copy_function])
        # both sources import into the same entity; under the f-string scheme
        # "x::y" → "e" and "x" → "y::e" would collide for eid "y::e" targets —
        # here we simply assert every candidate lands as its own tuple
        candidates = candidate_imports(spec)
        assert len(candidates) == 2
        extended = apply_imports(spec, candidates).specification
        assert len(extended.instance("T")) == 1 + 2

    def test_derived_tids_nest(self):
        spec, _query = chained_preservation_workload(depth=2, candidates=1, seed=0)
        closure = candidate_closure(spec)
        [derived] = [c for i, c in enumerate(closure.candidates) if i in closure.prerequisites]
        [base] = [c for i, c in enumerate(closure.candidates) if i not in closure.prerequisites]
        assert derived.source_tid == base.new_tid()
        assert derived.new_tid()[2] == base.new_tid()


class TestCandidateClosure:
    def test_unchained_closure_equals_base_candidates(self, manager_spec):
        closure = candidate_closure(manager_spec)
        assert list(closure.candidates) == candidate_imports(manager_spec)
        assert closure.prerequisites == {}
        assert set(closure.depths) <= {0}

    def test_chained_closure_levels_and_prerequisites(self):
        spec, _query = chained_preservation_workload(
            depth=3, candidates=2, spoiler=False, seed=5
        )
        closure = candidate_closure(spec)
        assert len(closure.candidates) == 2 * 3  # two chains of length three
        assert max(closure.depths) == 2
        for index, candidate in enumerate(closure.candidates):
            chain = closure.prerequisite_chain(index)
            assert len(chain) == closure.depths[index]
            if chain:
                prerequisite = closure.candidates[closure.prerequisites[index]]
                assert candidate.source_tid == prerequisite.new_tid()

    def test_count_closed_subsets_matches_generation(self):
        spec, _query = chained_preservation_workload(
            depth=3, candidates=2, spoiler=False, seed=5
        )
        closure = candidate_closure(spec)
        full = tuple(range(len(closure.candidates)))
        subsets = list(closure.closed_subsets(full))
        # two prerequisite chains of length three: 4 prefixes each
        assert closure.count_closed_subsets(full) == len(subsets) == 4 ** 2
        assert len({frozenset(s) for s in subsets}) == len(subsets)
        partial = tuple(full[:3])
        assert closure.count_closed_subsets(partial) == len(
            list(closure.closed_subsets(partial))
        )

    def test_downward_closure_helpers(self):
        spec, _query = chained_preservation_workload(depth=2, candidates=1, seed=0)
        closure = candidate_closure(spec)
        [derived_index] = list(closure.prerequisites)
        base_index = closure.prerequisites[derived_index]
        assert not closure.is_downward_closed({derived_index})
        assert closure.is_downward_closed({base_index})
        assert closure.downward_closure({derived_index}) == {base_index, derived_index}

    def test_cyclic_copy_graph_rejected(self):
        schema = RelationSchema("R", ("A",))
        schema2 = RelationSchema("Q", ("A",))
        r = TemporalInstance.from_rows(
            schema, {"r0": {"EID": "e", "A": 0}, "r1": {"EID": "e", "A": 1}}
        )
        q = TemporalInstance.from_rows(schema2, {"q0": {"EID": "e", "A": 0}})
        forward = CopyFunction(
            "fw", CopySignature(schema2, ("A",), schema, ("A",)),
            target="Q", source="R",
        )
        backward = CopyFunction(
            "bw", CopySignature(schema, ("A",), schema2, ("A",)),
            target="R", source="Q",
        )
        spec = Specification({"R": r, "Q": q}, copy_functions=[forward, backward])
        with pytest.raises(SpecificationError, match="cycle"):
            candidate_closure(spec)

    def test_could_chain_is_a_graph_over_approximation(self, manager_spec):
        spec, _query = chained_preservation_workload(depth=2, candidates=0, seed=0)
        assert could_chain(spec)  # the graph chains ...
        assert candidate_closure(spec).candidates == ()  # ... with nothing to import
        assert not could_chain(manager_spec)


class TestChainedApplyImports:
    def test_derived_import_applies_in_any_order(self):
        spec, _query = chained_preservation_workload(depth=2, candidates=1, seed=0)
        closure = candidate_closure(spec)
        forward = apply_imports(spec, list(closure.candidates))
        backward = apply_imports(spec, list(reversed(closure.candidates)))
        for name in spec.instances:
            assert forward.specification.instance(name).structurally_equal(
                backward.specification.instance(name)
            )

    def test_derived_values_copied_through_the_chain(self):
        spec, _query = chained_preservation_workload(
            depth=2, candidates=1, spoiler=True, seed=0
        )
        closure = candidate_closure(spec)
        extended = closure.extension.specification
        [derived_index] = list(closure.prerequisites)
        derived = closure.candidates[derived_index]
        imported = extended.instance("L2").tuple_by_tid(derived.new_tid())
        assert imported["a0"] == 101  # the spoiler payload, two hops down

    def test_missing_prerequisite_rejected(self):
        spec, _query = chained_preservation_workload(depth=2, candidates=1, seed=0)
        closure = candidate_closure(spec)
        [derived_index] = list(closure.prerequisites)
        with pytest.raises(SpecificationError, match="prerequisite"):
            apply_imports(spec, [closure.candidates[derived_index]])


class TestEnumerateExtensions:
    def test_all_nonempty_subsets(self, manager_spec):
        extensions = list(enumerate_extensions(manager_spec))
        assert len(extensions) == 3  # {m1}, {m3}, {m1, m3}

    def test_max_imports_bound(self, manager_spec):
        extensions = list(enumerate_extensions(manager_spec, max_imports=1))
        assert len(extensions) == 2
        assert all(e.size_increase == 1 for e in extensions)

    def test_no_extensions_when_nothing_to_import(self, company_spec):
        assert list(enumerate_extensions(company_spec)) == []

    def test_chained_enumeration_is_downward_closed(self):
        spec, _query = chained_preservation_workload(depth=2, candidates=1, seed=0)
        extensions = list(enumerate_extensions(spec))
        # one chain of two imports: {base} and {base, derived} — never the
        # derived import alone (its source tuple would not exist)
        assert [e.size_increase for e in extensions] == [1, 2]
        closure = candidate_closure(spec)
        assert extensions[1].imports == closure.candidates
