"""Tests for extension enumeration (Ext(ρ))."""

import pytest

from repro.exceptions import SpecificationError
from repro.preservation.extensions import (
    apply_imports,
    candidate_imports,
    enumerate_extensions,
)
from repro.reasoning.cps import is_consistent
from repro.workloads import company


class TestCandidateImports:
    def test_manager_spec_candidates(self, manager_spec):
        candidates = candidate_imports(manager_spec)
        # m2 is already imported (ρ(s3) = m2); m1 and m3 remain
        assert {(c.source_tid, c.target_eid) for c in candidates} == {
            ("m1", company.MARY),
            ("m3", company.MARY),
        }

    def test_company_spec_has_no_extendable_copy_function(self, company_spec):
        # ρ of Example 2.2 covers only mgrAddr, so it cannot be extended
        assert candidate_imports(company_spec) == []

    def test_match_entities_by_eid_toggle(self, manager_spec):
        liberal = candidate_imports(manager_spec, match_entities_by_eid=False)
        strict = candidate_imports(manager_spec, match_entities_by_eid=True)
        assert len(liberal) >= len(strict)
        # Emp has three entities, so each Mgr tuple may target each of them
        assert len(liberal) == 3 * 3 - 1  # minus the already-imported (m2, Mary)

    def test_copy_function_name_filter(self, manager_spec):
        assert candidate_imports(manager_spec, copy_function_names=["nonexistent"]) == []


class TestApplyImports:
    def test_new_tuple_added_with_copied_values(self, manager_spec):
        [candidate] = [c for c in candidate_imports(manager_spec) if c.source_tid == "m3"]
        extension = apply_imports(manager_spec, [candidate])
        emp = extension.specification.instance("Emp")
        assert len(emp) == len(manager_spec.instance("Emp")) + 1
        new_tuple = emp.tuple_by_tid(candidate.new_tid())
        assert new_tuple["LN"] == "Smith"
        assert new_tuple["status"] == "divorced"
        assert new_tuple.eid == company.MARY

    def test_copy_function_extended(self, manager_spec):
        [candidate] = [c for c in candidate_imports(manager_spec) if c.source_tid == "m3"]
        extension = apply_imports(manager_spec, [candidate])
        [cf] = extension.specification.copy_functions
        assert cf(candidate.new_tid()) == "m3"
        assert cf("s3") == "m2"  # the original mapping is preserved
        assert extension.size_increase == 1

    def test_base_specification_untouched(self, manager_spec):
        before = len(manager_spec.instance("Emp"))
        [candidate] = [c for c in candidate_imports(manager_spec) if c.source_tid == "m1"]
        apply_imports(manager_spec, [candidate])
        assert len(manager_spec.instance("Emp")) == before

    def test_extended_specification_remains_consistent(self, manager_spec):
        for candidate in candidate_imports(manager_spec):
            extension = apply_imports(manager_spec, [candidate])
            assert is_consistent(extension.specification)

    def test_unknown_copy_function_rejected(self, manager_spec):
        from repro.preservation.extensions import CandidateImport

        with pytest.raises(SpecificationError):
            apply_imports(manager_spec, [CandidateImport("nope", "m1", company.MARY)])

    def test_empty_extension_describes_itself(self, manager_spec):
        extension = apply_imports(manager_spec, [])
        assert extension.describe() == "(no imports)"
        assert extension.size_increase == 0


class TestEnumerateExtensions:
    def test_all_nonempty_subsets(self, manager_spec):
        extensions = list(enumerate_extensions(manager_spec))
        assert len(extensions) == 3  # {m1}, {m3}, {m1, m3}

    def test_max_imports_bound(self, manager_spec):
        extensions = list(enumerate_extensions(manager_spec, max_imports=1))
        assert len(extensions) == 2
        assert all(e.size_increase == 1 for e in extensions)

    def test_no_extensions_when_nothing_to_import(self, company_spec):
        assert list(enumerate_extensions(company_spec)) == []
