"""Tests for the PTIME CPP/BCP algorithms (SP queries, no denial constraints),
validated against the exhaustive solvers."""

import pytest

from repro.exceptions import QueryError, SpecificationError
from repro.preservation.cpp import is_currency_preserving
from repro.preservation.sp_fast import sp_has_bounded_extension, sp_is_currency_preserving
from repro.query.ast import SPQuery
from repro.workloads import company
from repro.workloads.synthetic import chain_copy_specification, random_sp_query


class TestApplicability:
    def test_requires_sp_query(self):
        spec = chain_copy_specification(relations=2, entities=2, tuples_per_entity=2, seed=0)
        from repro.query.builders import atom, conjunctive_query, variables

        x, y = variables("x", "y")
        cq = conjunctive_query((x,), [atom("R0", x, y, y, y)])
        with pytest.raises(QueryError):
            sp_is_currency_preserving(cq, spec)

    def test_requires_no_denial_constraints(self, manager_spec):
        with pytest.raises(SpecificationError):
            sp_is_currency_preserving(company.paper_queries()["Q2"], manager_spec)

    def test_requires_unchained_copy_functions(self):
        """The single-import probes only see base candidates; on this
        constraint-free chained spec they would answer True while the closure
        engines (correctly) find a violating *derived* import — reject
        instead of silently answering the wrong question."""
        from repro.core.copy_function import CopyFunction, CopySignature
        from repro.core.instance import TemporalInstance
        from repro.core.schema import RelationSchema
        from repro.core.specification import Specification

        schemas = [RelationSchema(f"L{i}", ("a0",)) for i in range(3)]
        l0 = TemporalInstance.from_rows(
            schemas[0],
            {"b0": {"EID": "e", "a0": 100}, "c0": {"EID": "e", "a0": 101}},
        )
        l1 = TemporalInstance.from_rows(schemas[1], {"b1": {"EID": "e", "a0": 100}})
        l2 = TemporalInstance.from_rows(schemas[2], {"b2": {"EID": "e", "a0": 100}})
        spec = Specification(
            {"L0": l0, "L1": l1, "L2": l2},
            copy_functions=[
                CopyFunction(
                    "r0", CopySignature(schemas[1], ("a0",), schemas[0], ("a0",)),
                    target="L1", source="L0", mapping={"b1": "b0"},
                ),
                CopyFunction(
                    "r1", CopySignature(schemas[2], ("a0",), schemas[1], ("a0",)),
                    target="L2", source="L1", mapping={"b2": "b1"},
                ),
            ],
        )
        query = SPQuery("L2", schemas[2], ["a0"])
        # the closure engines see the violating derived import into L2
        assert not is_currency_preserving(query, spec, method="enumerate")
        assert not is_currency_preserving(query, spec, method="auto")  # routes to sat
        with pytest.raises(SpecificationError):
            sp_is_currency_preserving(query, spec)
        with pytest.raises(SpecificationError):
            sp_has_bounded_extension(query, spec, k=2)

    def test_chaining_graph_without_derived_candidates_stays_eligible(self):
        """The gate is exact (closure-based), not the copy-graph
        over-approximation: a fully-mapped upstream copy function admits no
        derived import, so the PTIME probes remain sound and applicable."""
        from repro.core.copy_function import CopyFunction, CopySignature
        from repro.core.instance import TemporalInstance
        from repro.core.schema import RelationSchema
        from repro.core.specification import Specification
        from repro.preservation.extensions import could_chain, has_chained_imports

        schemas = [RelationSchema(f"L{i}", ("a0",)) for i in range(3)]
        # every L0 tuple already mapped into L1: nothing importable upstream
        l0 = TemporalInstance.from_rows(schemas[0], {"b0": {"EID": "e", "a0": 100}})
        l1 = TemporalInstance.from_rows(
            schemas[1],
            {"b1": {"EID": "e", "a0": 100}, "c1": {"EID": "e", "a0": 101}},
        )
        l2 = TemporalInstance.from_rows(schemas[2], {"b2": {"EID": "e", "a0": 100}})
        spec = Specification(
            {"L0": l0, "L1": l1, "L2": l2},
            copy_functions=[
                CopyFunction(
                    "r0", CopySignature(schemas[1], ("a0",), schemas[0], ("a0",)),
                    target="L1", source="L0", mapping={"b1": "b0"},
                ),
                CopyFunction(
                    "r1", CopySignature(schemas[2], ("a0",), schemas[1], ("a0",)),
                    target="L2", source="L1", mapping={"b2": "b1"},
                ),
            ],
        )
        assert could_chain(spec) and not has_chained_imports(spec)
        query = SPQuery("L2", schemas[2], ["a0"])
        fast = sp_is_currency_preserving(query, spec)  # accepted, not rejected
        assert fast == is_currency_preserving(query, spec, method="enumerate")
        assert fast == is_currency_preserving(query, spec, method="auto")  # routes to sp


class TestAgreementWithBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_cpp_agreement_on_chained_specs(self, seed):
        spec = chain_copy_specification(
            relations=2, entities=2, tuples_per_entity=2, order_density=0.5,
            with_constraints=False, seed=seed,
        )
        query = random_sp_query(spec, relation="R1", seed=seed)
        fast = sp_is_currency_preserving(query, spec)
        slow = is_currency_preserving(query, spec, method="enumerate", ccqa_method="candidates")
        assert fast == slow, f"seed {seed}"

    @pytest.mark.parametrize("seed", range(4))
    def test_cpp_agreement_on_projection_queries(self, seed):
        spec = chain_copy_specification(
            relations=2, entities=2, tuples_per_entity=2, order_density=0.3,
            with_constraints=False, seed=seed + 100,
        )
        schema = spec.instance("R1").schema
        query = SPQuery("R1", schema, ["a0"])
        fast = sp_is_currency_preserving(query, spec)
        slow = is_currency_preserving(query, spec, method="enumerate", ccqa_method="candidates")
        assert fast == slow, f"seed {seed}"

    @pytest.mark.parametrize("seed", range(3))
    def test_bcp_agreement_for_k1(self, seed):
        from repro.preservation.bcp import has_bounded_extension

        spec = chain_copy_specification(
            relations=2, entities=2, tuples_per_entity=2, order_density=0.5,
            with_constraints=False, seed=seed,
        )
        query = random_sp_query(spec, relation="R1", seed=seed)
        fast = sp_has_bounded_extension(query, spec, k=1)
        slow = has_bounded_extension(query, spec, k=1, method="enumerate")
        assert fast == slow, f"seed {seed}"


class TestEdgeCases:
    def test_no_copy_functions_is_trivially_preserving(self):
        from repro.workloads.synthetic import SyntheticConfig, random_specification

        spec = random_specification(SyntheticConfig(with_constraints=False, seed=7))
        query = random_sp_query(spec, seed=7)
        assert sp_is_currency_preserving(query, spec)

    def test_bounded_with_k0_equals_plain_cpp(self):
        spec = chain_copy_specification(
            relations=2, entities=2, tuples_per_entity=2, with_constraints=False, seed=3
        )
        query = random_sp_query(spec, relation="R1", seed=3)
        assert sp_has_bounded_extension(query, spec, k=0) == sp_is_currency_preserving(query, spec)

    def test_negative_k_rejected(self):
        spec = chain_copy_specification(relations=2, with_constraints=False, seed=1)
        query = random_sp_query(spec, relation="R1", seed=1)
        with pytest.raises(SpecificationError):
            sp_has_bounded_extension(query, spec, k=-2)
