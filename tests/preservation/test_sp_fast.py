"""Tests for the PTIME CPP/BCP algorithms (SP queries, no denial constraints),
validated against the exhaustive solvers."""

import pytest

from repro.exceptions import QueryError, SpecificationError
from repro.preservation.cpp import is_currency_preserving
from repro.preservation.sp_fast import sp_has_bounded_extension, sp_is_currency_preserving
from repro.query.ast import SPQuery
from repro.workloads import company
from repro.workloads.synthetic import chain_copy_specification, random_sp_query


class TestApplicability:
    def test_requires_sp_query(self):
        spec = chain_copy_specification(relations=2, entities=2, tuples_per_entity=2, seed=0)
        from repro.query.builders import atom, conjunctive_query, variables

        x, y = variables("x", "y")
        cq = conjunctive_query((x,), [atom("R0", x, y, y, y)])
        with pytest.raises(QueryError):
            sp_is_currency_preserving(cq, spec)

    def test_requires_no_denial_constraints(self, manager_spec):
        with pytest.raises(SpecificationError):
            sp_is_currency_preserving(company.paper_queries()["Q2"], manager_spec)


class TestAgreementWithBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_cpp_agreement_on_chained_specs(self, seed):
        spec = chain_copy_specification(
            relations=2, entities=2, tuples_per_entity=2, order_density=0.5,
            with_constraints=False, seed=seed,
        )
        query = random_sp_query(spec, relation="R1", seed=seed)
        fast = sp_is_currency_preserving(query, spec)
        slow = is_currency_preserving(query, spec, method="enumerate", ccqa_method="candidates")
        assert fast == slow, f"seed {seed}"

    @pytest.mark.parametrize("seed", range(4))
    def test_cpp_agreement_on_projection_queries(self, seed):
        spec = chain_copy_specification(
            relations=2, entities=2, tuples_per_entity=2, order_density=0.3,
            with_constraints=False, seed=seed + 100,
        )
        schema = spec.instance("R1").schema
        query = SPQuery("R1", schema, ["a0"])
        fast = sp_is_currency_preserving(query, spec)
        slow = is_currency_preserving(query, spec, method="enumerate", ccqa_method="candidates")
        assert fast == slow, f"seed {seed}"

    @pytest.mark.parametrize("seed", range(3))
    def test_bcp_agreement_for_k1(self, seed):
        from repro.preservation.bcp import has_bounded_extension

        spec = chain_copy_specification(
            relations=2, entities=2, tuples_per_entity=2, order_density=0.5,
            with_constraints=False, seed=seed,
        )
        query = random_sp_query(spec, relation="R1", seed=seed)
        fast = sp_has_bounded_extension(query, spec, k=1)
        slow = has_bounded_extension(query, spec, k=1, method="enumerate")
        assert fast == slow, f"seed {seed}"


class TestEdgeCases:
    def test_no_copy_functions_is_trivially_preserving(self):
        from repro.workloads.synthetic import SyntheticConfig, random_specification

        spec = random_specification(SyntheticConfig(with_constraints=False, seed=7))
        query = random_sp_query(spec, seed=7)
        assert sp_is_currency_preserving(query, spec)

    def test_bounded_with_k0_equals_plain_cpp(self):
        spec = chain_copy_specification(
            relations=2, entities=2, tuples_per_entity=2, with_constraints=False, seed=3
        )
        query = random_sp_query(spec, relation="R1", seed=3)
        assert sp_has_bounded_extension(query, spec, k=0) == sp_is_currency_preserving(query, spec)

    def test_negative_k_rejected(self):
        spec = chain_copy_specification(relations=2, with_constraints=False, seed=1)
        query = random_sp_query(spec, relation="R1", seed=1)
        with pytest.raises(SpecificationError):
            sp_has_bounded_extension(query, spec, k=-2)
