"""Tests for CPP, ECP and BCP."""

import pytest

from repro.exceptions import SpecificationError
from repro.preservation.bcp import bounded_currency_preserving_extension, has_bounded_extension
from repro.preservation.cpp import find_violating_extension, is_currency_preserving
from repro.preservation.ecp import currency_preserving_extension_exists, maximal_extension
from repro.preservation.extensions import apply_imports, candidate_imports
from repro.reasoning.ccqa import certain_current_answers
from repro.workloads import company


@pytest.fixture()
def q2():
    return company.paper_queries()["Q2"]


@pytest.fixture()
def q1():
    return company.paper_queries()["Q1"]


def extend_with(spec, source_tid):
    [candidate] = [c for c in candidate_imports(spec) if c.source_tid == source_tid]
    return apply_imports(spec, [candidate])


class TestCPPExample41:
    def test_rho_is_not_currency_preserving_for_q2(self, manager_spec, q2):
        assert not is_currency_preserving(q2, manager_spec)

    def test_violating_extension_copies_m3(self, manager_spec, q2):
        witness = find_violating_extension(q2, manager_spec)
        assert witness is not None
        assert any(imp.source_tid == "m3" for imp in witness.imports)

    def test_answer_changes_from_dupont_to_smith(self, manager_spec, q2):
        base = certain_current_answers(q2, manager_spec)
        assert base == frozenset({("Dupont",)})
        extended = extend_with(manager_spec, "m3")
        assert certain_current_answers(q2, extended.specification) == frozenset({("Smith",)})

    def test_rho1_is_currency_preserving_for_q2(self, manager_spec, q2):
        """Example 4.1: after importing s'3 (our m3), copying more tuples from
        Mgr does not change the answer to Q2."""
        extended = extend_with(manager_spec, "m3")
        assert is_currency_preserving(q2, extended.specification)

    def test_q1_salary_is_already_preserved(self, manager_spec, q1):
        # Mgr's salaries (60, 80) never exceed the certain current salary 80
        assert is_currency_preserving(q1, manager_spec)

    def test_no_extendable_copy_function_means_preserving(self, company_spec, q1):
        # Ext(ρ) is empty, so the condition holds vacuously (S0 is consistent)
        assert is_currency_preserving(q1, company_spec)


class TestECP:
    def test_always_true_for_consistent_specifications(self, manager_spec, q2):
        assert currency_preserving_extension_exists(q2, manager_spec)

    def test_false_for_inconsistent_specifications(self, q2):
        from repro.core.denial import AttrRef, Comparison, CurrencyAtom, DenialConstraint
        from repro.core.instance import TemporalInstance
        from repro.core.schema import RelationSchema
        from repro.core.specification import Specification

        schema = RelationSchema("R", ("A",))
        instance = TemporalInstance.from_rows(
            schema, {"t1": {"EID": "e", "A": 1}, "t2": {"EID": "e", "A": 2}}
        )
        up = DenialConstraint(
            schema, ("s", "t"),
            [Comparison(AttrRef("s", "A"), ">", AttrRef("t", "A"))],
            CurrencyAtom("t", "A", "s"), name="up",
        )
        down = DenialConstraint(
            schema, ("s", "t"),
            [Comparison(AttrRef("s", "A"), "<", AttrRef("t", "A"))],
            CurrencyAtom("t", "A", "s"), name="down",
        )
        spec = Specification({"R": instance}, {"R": [up, down]})
        assert not currency_preserving_extension_exists(q2, spec)

    def test_maximal_extension_imports_everything_importable(self, manager_spec, q2):
        extension = maximal_extension(manager_spec)
        assert extension.size_increase == 2  # m1 and m3
        assert is_currency_preserving(q2, extension.specification)

    def test_maximal_extension_of_unextendable_spec_is_empty(self, company_spec):
        assert maximal_extension(company_spec).size_increase == 0


class TestBCP:
    def test_bounded_extension_exists_with_k1(self, manager_spec, q2):
        assert has_bounded_extension(q2, manager_spec, k=1)

    def test_witness_has_at_most_k_imports(self, manager_spec, q2):
        witness = bounded_currency_preserving_extension(q2, manager_spec, k=1)
        assert witness is not None
        assert witness.size_increase <= 1
        assert is_currency_preserving(q2, witness.specification)

    def test_k0_requires_rho_itself_to_preserve(self, manager_spec, q2, q1):
        assert not has_bounded_extension(q2, manager_spec, k=0)
        assert has_bounded_extension(q1, manager_spec, k=0)

    def test_negative_k_rejected(self, manager_spec, q2):
        with pytest.raises(SpecificationError):
            has_bounded_extension(q2, manager_spec, k=-1)

    def test_already_preserving_spec_trivially_bounded(self, company_spec, q1):
        assert has_bounded_extension(q1, company_spec, k=0)
