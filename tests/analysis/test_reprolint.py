"""Tests for the reprolint static-analysis framework (R1–R8).

Three layers: per-rule fixture tests (each rule fires on its bug class and
stays quiet on the compliant twin, and stops firing when the rule is
disabled), pragma grammar tests (reason required, unknown rules rejected,
stale suppressions reported), and the self-application gate (``src/repro``
lints clean, with every suppression carrying a reason).
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.static import (
    ALL_RULES,
    Linter,
    parse_pragmas,
    rule_by_identifier,
)
from repro.analysis.static.cli import main as reprolint_main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


def lint(path: Path, rules=None):
    return Linter(rules).lint_paths([str(path)])


def codes(report):
    return sorted({finding.rule for finding in report.unsuppressed})


# --------------------------------------------------------------------------- #
# per-rule fixtures: fires on bad, quiet on good, quiet when disabled
# --------------------------------------------------------------------------- #
RULE_CODES = ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"]


@pytest.mark.parametrize("code", RULE_CODES)
def test_rule_fires_on_bad_fixture(code):
    report = lint(FIXTURES / f"{code.lower()}_bad.py")
    assert code in codes(report), report.findings


@pytest.mark.parametrize("code", RULE_CODES)
def test_rule_quiet_on_good_fixture(code):
    report = lint(FIXTURES / f"{code.lower()}_good.py")
    assert not report.findings, [f.render() for f in report.findings]


@pytest.mark.parametrize("code", RULE_CODES)
def test_rule_silent_when_disabled(code):
    enabled = [rule for rule in ALL_RULES if rule.code != code]
    report = lint(FIXTURES / f"{code.lower()}_bad.py", rules=enabled)
    assert code not in codes(report)
    # and conversely, the rule alone is sufficient to catch its fixture
    alone = lint(FIXTURES / f"{code.lower()}_bad.py", rules=[rule_by_identifier(code)])
    assert codes(alone) == [code]


# --------------------------------------------------------------------------- #
# specific bug classes from the acceptance criteria
# --------------------------------------------------------------------------- #
def test_r1_flags_unregistered_mutator_and_phantom_entry():
    report = lint(FIXTURES / "r1_bad.py")
    messages = [f.message for f in report.unsuppressed if f.rule == "R1"]
    assert any("add_widget" in message for message in messages)  # unregistered
    assert any("add_ghost" in message and "no such method" in message for message in messages)
    assert any("has no entry for mutation" in message for message in messages)


def test_r1_flags_out_of_vocabulary_and_non_literal_policies():
    report = lint(FIXTURES / "r1_bad.py")
    messages = [f.message for f in report.unsuppressed if f.rule == "R1"]
    assert any("unknown policy 'exttend'" in message for message in messages)
    assert any("non-literal policy" in message for message in messages)


def test_r1_accepts_the_full_policy_vocabulary(tmp_path):
    rule = rule_by_identifier("R1")
    policies = sorted(rule.POLICIES)
    assert set(policies) == {
        "keep", "extend", "extend-or-rebuild", "rebuild", "clear", "delta"
    }
    row = ", ".join(f"'mutate_{i}': '{policy}'" for i, policy in enumerate(policies))
    path = tmp_path / "vocab.py"
    path.write_text(
        "class VocabSession:\n"
        f"    CACHE_DEPENDENCIES = {{'cache': {{{row}}}}}\n"
        + "".join(
            f"    def mutate_{i}(self):\n        self.mutations += 1\n"
            for i in range(len(policies))
        )
    )
    report = lint(path, rules=[rule])
    # only 'mutate_N is not an add_* method' style findings must not appear:
    # the literal policies themselves are all accepted
    assert not any(
        "policy" in f.message for f in report.unsuppressed
    ), [f.render() for f in report.unsuppressed]


def test_r2_flags_identity_keyed_spec_dict():
    report = lint(FIXTURES / "r2_bad.py")
    messages = [f.message for f in report.unsuppressed if f.rule == "R2"]
    assert any("id()" in message for message in messages)
    assert any("identity comparison" in message for message in messages)


def test_r2_flags_id_keyed_query_memo():
    # the session answer-memo bug class: memoising by id(query) misses every
    # value-identical re-ask and keeps dead entries alive
    report = lint(FIXTURES / "r2_bad.py")
    id_findings = [
        f for f in report.unsuppressed if f.rule == "R2" and "id()" in f.message
    ]
    assert len(id_findings) >= 2  # the spec dict and the query memo
    identity = [
        f
        for f in report.unsuppressed
        if f.rule == "R2" and "identity comparison" in f.message
    ]
    assert len(identity) >= 2  # the spec compare and the sp_query compare


def test_r3_flags_id_concatenated_key():
    report = lint(FIXTURES / "r3_bad.py")
    kinds = {f.message.split(" built", 1)[0] for f in report.unsuppressed if f.rule == "R3"}
    assert "composite f-string" in kinds
    assert "composite string concatenation" in kinds


def test_r4_flags_both_naive_call_and_fresh_substrate():
    report = lint(FIXTURES / "r4_bad.py")
    messages = [f.message for f in report.unsuppressed if f.rule == "R4"]
    assert any("naive" in message for message in messages)
    assert any("fresh Solver()" in message for message in messages)
    assert any("fresh CompletionEncoder()" in message for message in messages)


def test_r4_flags_factory_construction_in_hot_path(tmp_path):
    # create_solver is the R8-blessed route, but in a hot layer a fresh
    # engine still discards warm state — R4 learned the factory's name
    path = tmp_path / "hot.py"
    path.write_text(
        "def hot(cnf, backend):\n"
        "    return create_solver(backend, cnf.num_variables)\n"
    )
    report = lint(path, rules=[rule_by_identifier("R4")])
    assert any("create_solver" in f.message for f in report.unsuppressed)


def test_r8_flags_both_concrete_backends():
    report = lint(FIXTURES / "r8_bad.py")
    messages = [f.message for f in report.unsuppressed if f.rule == "R8"]
    assert any("Solver()" in message for message in messages)
    assert any("PySATBackend()" in message for message in messages)
    assert all("create_solver" in message for message in messages)


def test_r8_quiet_inside_repro_solvers(tmp_path):
    # the same construction is legal inside the backend's home package
    home = tmp_path / "src" / "repro" / "solvers" / "engine.py"
    home.parent.mkdir(parents=True)
    (tmp_path / "src" / "repro" / "__init__.py").write_text("")
    home.write_text("def build(n):\n    return Solver(n)\n")
    report = lint(home, rules=[rule_by_identifier("R8")])
    assert not report.findings


def test_r6_reaches_transitively_through_member_types():
    report = lint(FIXTURES / "r6_bad.py")
    messages = [f.message for f in report.unsuppressed if f.rule == "R6"]
    assert any("'lock'" in message and "'Payload'" in message for message in messages)
    assert any("'stream'" in message for message in messages)


def test_r7_excuses_solver_but_not_other_unpicklables():
    report = lint(FIXTURES / "r7_bad.py")
    messages = [f.message for f in report.unsuppressed if f.rule == "R7"]
    assert any("'lock'" in message and "'EncoderState'" in message for message in messages)
    assert any("'stream'" in message for message in messages)
    # the good fixture routes a Solver through the snapshot: R7's exemption
    clean = lint(FIXTURES / "r7_good.py")
    assert not clean.findings, [f.render() for f in clean.findings]


# --------------------------------------------------------------------------- #
# pragma grammar
# --------------------------------------------------------------------------- #
def test_pragma_reason_is_required():
    table = parse_pragmas("x = 1  # reprolint: allow(R2)\n")
    assert not table.by_line
    assert len(table.problems) == 1
    assert "reason is required" in table.problems[0].message


def test_pragma_unknown_rule_rejected():
    table = parse_pragmas("x = 1  # reprolint: allow(R99) — no such rule\n")
    assert not table.by_line
    assert len(table.problems) == 1
    assert "unknown rule" in table.problems[0].message


def test_pragma_trailing_applies_to_own_line():
    table = parse_pragmas("x = 1  # reprolint: allow(R2) — why not\n")
    (pragma,) = table.allowed(1)
    assert pragma.rules == ("R2",)
    assert pragma.reason == "why not"


def test_pragma_standalone_applies_to_next_line():
    table = parse_pragmas("# reprolint: allow(R4, R2) — two rules at once\nx = 1\n")
    (pragma,) = table.allowed(2)
    assert pragma.rules == ("R4", "R2")
    assert not table.allowed(1)


def test_pragma_accepts_all_separators_and_rule_names():
    for separator in ("—", "--", ":"):
        table = parse_pragmas(f"x = 1  # reprolint: allow(warm-state) {separator} reason\n")
        (pragma,) = table.allowed(1)
        assert pragma.rules == ("warm-state",)


def test_pragma_shaped_string_literal_is_not_a_pragma():
    table = parse_pragmas('x = "# reprolint: allow(R2)"\n')
    assert not table.by_line
    assert not table.problems


def test_pragma_fixture_suppresses_with_reasons():
    report = lint(FIXTURES / "pragma_ok.py")
    assert report.ok, [f.render() for f in report.unsuppressed]
    assert len(report.suppressed) == 2
    assert all(f.suppression_reason for f in report.suppressed)


def test_pragma_fixture_broken_pragmas_become_findings():
    report = lint(FIXTURES / "pragma_bad.py")
    by_code = {}
    for finding in report.unsuppressed:
        by_code.setdefault(finding.rule, []).append(finding)
    assert "P0" in by_code  # malformed (missing reason) + unknown rule
    assert len(by_code["P0"]) == 2
    assert "P1" in by_code  # stale suppression
    assert "R2" in by_code  # the missing-reason pragma suppresses nothing


# --------------------------------------------------------------------------- #
# self-application: the shipped tree lints clean
# --------------------------------------------------------------------------- #
def test_src_repro_lints_clean():
    report = lint(SRC_REPRO)
    assert report.ok, "\n".join(f.render() for f in report.unsuppressed)


def test_every_suppression_in_src_carries_a_reason():
    report = lint(SRC_REPRO)
    assert report.suppressed, "expected the documented pragma sites to exist"
    for finding in report.suppressed:
        assert finding.suppression_reason and finding.suppression_reason.strip()


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def test_cli_fail_on_findings_exit_codes(capsys):
    assert reprolint_main([str(FIXTURES / "r2_bad.py"), "--fail-on-findings"]) == 1
    assert reprolint_main([str(FIXTURES / "r2_good.py"), "--fail-on-findings"]) == 0
    out = capsys.readouterr().out
    assert "R2(identity-compare)" in out


def test_cli_without_fail_flag_reports_but_exits_zero(capsys):
    assert reprolint_main([str(FIXTURES / "r2_bad.py")]) == 0
    assert "finding(s)" in capsys.readouterr().out


def test_cli_select_unknown_rule_is_usage_error(capsys):
    assert reprolint_main([str(FIXTURES / "r2_bad.py"), "--select", "R99"]) == 2


def test_cli_select_restricts_rules(capsys):
    assert (
        reprolint_main(
            [str(FIXTURES / "r4_bad.py"), "--select", "R2", "--fail-on-findings"]
        )
        == 0
    )


def test_cli_list_rules(capsys):
    assert reprolint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.code in out


def test_cli_show_suppressed(capsys):
    assert reprolint_main([str(FIXTURES / "pragma_ok.py"), "--show-suppressed"]) == 0
    assert "[suppressed:" in capsys.readouterr().out


def test_cli_missing_path_is_usage_error():
    assert reprolint_main([str(FIXTURES / "does_not_exist.py")]) == 2


def test_tools_launcher_runs_clean_over_src():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "reprolint"),
         str(SRC_REPRO), "--fail-on-findings"],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
    )
    assert result.returncode == 0, result.stdout + result.stderr


# --------------------------------------------------------------------------- #
# the strict-typing gate (runs only where mypy is installed, e.g. CI)
# --------------------------------------------------------------------------- #
@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_allowlist_passes():
    result = subprocess.run(
        ["mypy", "--config-file", str(REPO_ROOT / "mypy.ini")],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
    )
    assert result.returncode == 0, result.stdout + result.stderr
