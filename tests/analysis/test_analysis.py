"""Tests for the analysis utilities (complexity tables, scaling, reports)."""

import time

from repro.analysis.complexity import SPECIAL_CASES, TABLE_II, TABLE_III, lookup, table_rows
from repro.analysis.report import render_kv, render_table
from repro.analysis.runtime import classify_growth, measure_scaling


class TestComplexityTables:
    def test_table_ii_covers_three_problems(self):
        assert {entry.problem for entry in TABLE_II} == {"CPS", "COP", "DCIP"}

    def test_table_iii_covers_four_problems(self):
        assert {entry.problem for entry in TABLE_III} == {"CCQA", "CPP", "ECP", "BCP"}

    def test_paper_claims_are_recorded(self):
        [cps_data] = [e for e in TABLE_II if e.problem == "CPS" and e.measure == "data"]
        assert cps_data.complexity == "NP-complete"
        [ccqa_fo] = [e for e in TABLE_III if e.problem == "CCQA" and e.setting == "FO"]
        assert ccqa_fo.complexity == "PSPACE-complete"

    def test_special_cases_are_tractable(self):
        ptime = [e for e in SPECIAL_CASES if e.complexity == "PTIME"]
        assert all(e.tractable for e in ptime)
        assert {e.problem for e in ptime} == {"CPS", "COP", "DCIP", "CCQA", "CPP", "BCP"}

    def test_lookup_by_problem_and_measure(self):
        rows = lookup("CCQA", "combined")
        assert any("PSPACE" in r.complexity for r in rows)
        assert all(r.problem == "CCQA" for r in rows)

    def test_table_rows_accessor(self):
        assert table_rows("II") is TABLE_II
        assert table_rows("III") is TABLE_III
        assert table_rows("special") is SPECIAL_CASES


class TestRuntimeAnalysis:
    def test_classify_flat(self):
        growth, _, _ = classify_growth([1, 2, 3, 4], [0.001, 0.0011, 0.0012, 0.001])
        assert growth == "flat"

    def test_classify_polynomial(self):
        sizes = [10, 20, 40, 80, 160]
        seconds = [s**2 / 1e6 for s in sizes]
        growth, exponent, _ = classify_growth(sizes, seconds)
        assert growth == "polynomial"
        assert 1.5 < exponent < 2.5

    def test_classify_exponential(self):
        sizes = [5, 10, 15, 20, 25]
        seconds = [2**s / 1e8 for s in sizes]
        growth, _, base = classify_growth(sizes, seconds)
        assert growth == "exponential"
        assert base > 1.5

    def test_too_few_points_is_flat(self):
        growth, _, _ = classify_growth([1, 2], [0.1, 0.2])
        assert growth == "flat"

    def test_measure_scaling_runs_the_callable(self):
        calls = []

        def runner(n):
            calls.append(n)
            time.sleep(0)

        result = measure_scaling("noop", runner, [1, 2, 3])
        assert calls == [1, 2, 3]
        assert len(result.measurements) == 3
        assert "noop" in result.summary()


class TestReports:
    def test_render_table_aligns_columns(self):
        text = render_table(["problem", "bound"], [["CPS", "NP-complete"], ["COP", "coNP"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "problem" in lines[2]
        assert len(lines) == 6

    def test_render_kv(self):
        text = render_kv([("rows", 3), ("status", "ok")], title="Summary")
        assert "rows: 3" in text
        assert text.startswith("Summary")
