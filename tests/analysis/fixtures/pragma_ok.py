"""Valid pragmas: trailing form and standalone form, both with reasons."""


def same_spec(spec, other_spec):
    return spec is other_spec  # reprolint: allow(R2) — fixture exercising the trailing form


def cache_probe(spec, other_spec):
    # reprolint: allow(identity-compare) — fixture exercising the standalone form and rule names
    return spec is other_spec
