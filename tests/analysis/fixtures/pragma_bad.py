"""Broken pragmas: missing reason, unknown rule, stale suppression."""


def no_reason(spec, other_spec):
    return spec is other_spec  # reprolint: allow(R2)


def unknown_rule(spec, other_spec):
    return spec is other_spec  # reprolint: allow(R99) — there is no rule R99


def stale(value):
    return value + 1  # reprolint: allow(R2) — nothing fires on this line
