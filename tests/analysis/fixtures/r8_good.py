"""R8 clean: engines come from the session's warm substrate, never built directly."""


def warm_probe(session):
    return session.encoder.satisfiable()


def configured(specification, backend):
    return ReasoningSession(specification, backend=backend)
