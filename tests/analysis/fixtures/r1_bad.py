"""R1 violations: an unregistered mutator, a phantom registration, a cache
with an incomplete mutation row, an out-of-vocabulary policy and a
non-literal policy."""

EXTEND = "extend"


class BadSession:
    CACHE_DEPENDENCIES = {
        "chase": {"add_tuple": "extend", "add_ghost": "rebuild"},
        "encoder": {"add_tuple": "rebuild"},
    }

    def add_tuple(self, tup):
        self.mutations += 1

    def add_widget(self, widget):
        self._clear_answer_state()


class TypoPolicySession:
    CACHE_DEPENDENCIES = {
        "chase": {"add_tuple": "exttend"},
        "encoder": {"add_tuple": EXTEND},
    }

    def add_tuple(self, tup):
        self.mutations += 1
