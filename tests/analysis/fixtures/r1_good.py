"""R1 clean: every mutator registered, every cache covers every mutation,
every policy a literal from the known vocabulary (including the
footprint-scoped ``"delta"``)."""


class GoodSession:
    CACHE_DEPENDENCIES = {
        "chase": {"add_tuple": "extend", "add_order": "extend"},
        "encoder": {"add_tuple": "rebuild", "add_order": "extend-or-rebuild"},
        "answers": {"add_tuple": "delta", "add_order": "delta"},
    }

    def add_tuple(self, tup):
        self._clear_answer_state()

    def add_order(self, lower, upper):
        self._clear_answer_state()

    def lookup(self, name):
        return name

    def _clear_answer_state(self):
        pass
