"""R5 clean: every carrier write invalidates (or delegates to a parent that
does)."""


class GoodInstance:
    def __init__(self, schema):
        self._tuples = []
        self._by_tid = {}
        self._indexes = {}

    def add(self, tup):
        self._tuples.append(tup)
        self._by_tid[tup.tid] = tup
        self._invalidate_row_caches()

    def _invalidate_row_caches(self):
        self._indexes.clear()


class DelegatingInstance(GoodInstance):
    def add(self, tup):
        super().add(tup)
