"""R2 violations: identity comparison, an identity-keyed spec dict, and an
id()-derived memo key on a query (the session answer-memo bug class)."""


def same_spec(spec, other_spec):
    return spec is other_spec


def register(specification, sessions):
    sessions[id(specification)] = specification
    return sessions


def memoise(query, memo, answer):
    memo[id(query)] = answer
    return memo


def same_query(sp_query, other_sp_query):
    return sp_query is other_sp_query
