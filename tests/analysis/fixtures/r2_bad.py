"""R2 violations: identity comparison and an identity-keyed spec dict."""


def same_spec(spec, other_spec):
    return spec is other_spec


def register(specification, sessions):
    sessions[id(specification)] = specification
    return sessions
