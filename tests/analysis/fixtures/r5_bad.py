"""R5 violation: a carrier write with no cache invalidation in the body."""


class BadInstance:
    def __init__(self, schema):
        self._tuples = []
        self._by_tid = {}
        self._indexes = {}

    def add(self, tup):
        self._tuples.append(tup)
        self._by_tid[tup.tid] = tup

    def _invalidate_row_caches(self):
        self._indexes.clear()
