# Lint fixtures: each rN_bad.py module violates rule RN, each rN_good.py is
# the minimal compliant counterpart.  These modules are linted as *files* by
# tests/analysis/test_reprolint.py — they are never imported or executed, so
# undefined names inside them are deliberate.
