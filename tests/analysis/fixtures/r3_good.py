"""R3 clean: structured-tuple keys; ids in strings only for display."""


def make_key(tid, eid):
    return ("import", tid, eid)


def describe(tid, eid):
    return f"tuple {tid} of entity {eid}"


def error_text(tid):
    raise KeyError(f"unknown tuple {tid!r} in instance")
