"""R3 violations: f-string and concatenation composite keys built from ids."""


def make_key(tid, eid):
    return f"import::{tid}::{eid}"


def concat_key(prefix, eid):
    return prefix + "::" + eid
