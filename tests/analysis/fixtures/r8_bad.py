"""R8 violations: concrete solver engines constructed outside ``repro.solvers``."""


def hot_probe(cnf):
    solver = Solver(cnf.num_variables)
    return solver.solve()


def adapter_shortcut():
    return PySATBackend(0)
