"""R7 violation: an unpicklable member reachable (transitively) from the
snapshot root."""

from threading import Lock
from typing import Generator


class EncoderState:
    lock: Lock


class SessionSnapshot:
    mutations: int
    encoder: EncoderState
    stream: Generator
