"""R7 clean: everything reachable from the snapshot root pickles — including
a Solver, which the snapshot deliberately carries (R7's one exemption over
R6's unpicklable set)."""

from typing import Optional, Tuple


class Solver:
    clauses: Tuple[Tuple[int, ...], ...]


class EncoderState:
    solver: Solver


class SessionSnapshot:
    mutations: int
    encoder: EncoderState
    note: Optional[str]
