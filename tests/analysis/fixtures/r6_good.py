"""R6 clean: only picklable members reachable from the process boundary."""

from typing import Optional, Tuple


class Payload:
    values: Tuple[str, ...]


class ProblemRequest:
    problem: str
    payload: Payload
    note: Optional[str]
