"""R6 violation: an unpicklable member reachable (transitively) from the
process boundary."""

from threading import Lock
from typing import Iterator


class Payload:
    lock: Lock


class ProblemRequest:
    problem: str
    payload: Payload
    stream: Iterator[str]
