"""R4 clean: warm substrate reuse; naive calls only inside oracle scopes."""


def warm_path(session):
    return session.space.extension(())


def _reference_answer_naive(specification):
    return enumerate_extensions_naive(specification)
