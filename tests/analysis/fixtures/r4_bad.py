"""R4 violations: naive oracle call and fresh substrate in a hot path."""


def hot_path(cnf, specification):
    solver = Solver(cnf.num_variables)
    encoder = CompletionEncoder(specification)
    return solver, encoder


def answer(specification):
    return enumerate_extensions_naive(specification)
