"""R2 clean: structural comparison; identity only against singletons;
queries keyed structurally."""


def same_spec(spec, other_spec):
    return spec == other_spec


def missing(spec):
    return spec is None


def register(specification, sessions):
    sessions[specification] = specification
    return sessions


def memoise(query, memo, answer):
    memo[query] = answer
    return memo
