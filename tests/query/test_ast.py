"""Unit tests for the query AST."""

import pytest

from repro.exceptions import QueryError
from repro.query.ast import (
    And,
    Compare,
    Constant,
    Exists,
    ForAll,
    Not,
    Or,
    Query,
    RelationAtom,
    SPQuery,
    Var,
    free_variables,
    formula_variables,
    query_constants,
    relations_used,
)
from repro.workloads import company


class TestTermsAndAtoms:
    def test_relation_atom_wraps_plain_values_as_constants(self):
        atom = RelationAtom("R", ("e1", Var("x"), 5))
        assert isinstance(atom.terms[0], Constant)
        assert isinstance(atom.terms[1], Var)
        assert atom.terms[2].value == 5

    def test_compare_rejects_unknown_operator(self):
        with pytest.raises(QueryError):
            Compare(Var("x"), "~", 1)

    def test_and_or_flatten_nested_nodes(self):
        a = Compare(Var("x"), "=", 1)
        b = Compare(Var("y"), "=", 2)
        c = Compare(Var("z"), "=", 3)
        assert len(And(And(a, b), c).children) == 3
        assert len(Or(Or(a, b), c).children) == 3

    def test_exists_accepts_single_variable(self):
        formula = Exists(Var("x"), Compare(Var("x"), "=", 1))
        assert formula.variables == (Var("x"),)


class TestVariableAnalysis:
    def test_free_variables_of_atom(self):
        atom = RelationAtom("R", (Var("x"), 1, Var("y")))
        assert free_variables(atom) == frozenset({"x", "y"})

    def test_free_variables_respect_quantifiers(self):
        formula = Exists(Var("y"), And(RelationAtom("R", (Var("x"), Var("y"))),))
        assert free_variables(formula) == frozenset({"x"})
        assert formula_variables(formula) == frozenset({"x", "y"})

    def test_forall_binds_variables(self):
        formula = ForAll(Var("x"), Not(RelationAtom("R", (Var("x"),))))
        assert free_variables(formula) == frozenset()

    def test_relations_used(self):
        formula = And(RelationAtom("R", (Var("x"),)), RelationAtom("S", (Var("x"),)))
        assert relations_used(formula) == frozenset({"R", "S"})

    def test_query_constants(self):
        formula = And(RelationAtom("R", (Var("x"), 7)), Compare(Var("x"), "=", "c"))
        assert query_constants(formula) == frozenset({7, "c"})


class TestQueryValidation:
    def test_head_variables_must_be_free(self):
        body = Exists(Var("x"), RelationAtom("R", (Var("x"),)))
        with pytest.raises(QueryError):
            Query((Var("x"),), body)

    def test_free_body_variables_must_be_in_head(self):
        body = RelationAtom("R", (Var("x"), Var("y")))
        with pytest.raises(QueryError):
            Query((Var("x"),), body)

    def test_boolean_query_allowed(self):
        body = Exists((Var("x"), Var("y")), RelationAtom("R", (Var("x"), Var("y"))))
        query = Query((), body)
        assert query.arity == 0

    def test_query_reports_relations_and_constants(self):
        body = RelationAtom("R", (Var("x"), 3))
        query = Query((Var("x"),), body)
        assert query.relations() == frozenset({"R"})
        assert 3 in query.constants()


class TestSPQuery:
    def test_q1_structure(self):
        q1 = company.query_q1_salary()
        assert q1.relation == "Emp"
        assert q1.projection == ("salary",)
        assert q1.eq_const == {"FN": "Mary"}
        assert not q1.is_identity()

    def test_identity_query(self):
        schema = company.emp_schema()
        identity = SPQuery("Emp", schema, schema.attributes)
        assert identity.is_identity()

    def test_projection_must_be_nonempty(self):
        with pytest.raises(QueryError):
            SPQuery("Emp", company.emp_schema(), [])

    def test_relevant_attributes(self):
        q = SPQuery(
            "Emp",
            company.emp_schema(),
            ["salary"],
            eq_const={"FN": "Mary"},
            eq_attr=[("LN", "address")],
        )
        assert q.relevant_attributes() == frozenset({"salary", "FN", "LN", "address"})

    def test_to_query_round_trip_is_cq(self):
        from repro.query.classify import classify

        generic = company.query_q2_last_name().to_query()
        assert classify(generic) == "CQ"
        assert generic.arity == 1
