"""Unit tests for query-language classification."""

from repro.query.ast import And, Compare, Exists, ForAll, Not, Or, Query, RelationAtom, Var
from repro.query.builders import atom, conjunctive_query, union_query, variables
from repro.query.classify import (
    QueryLanguage,
    classify,
    is_conjunctive,
    is_first_order,
    is_positive_existential,
    is_union_of_conjunctive,
)
from repro.workloads import company


def simple_cq():
    x, y = variables("x", "y")
    return conjunctive_query((x,), [atom("R", x, y), Compare(y, "=", 1)])


def simple_ucq():
    x = Var("x")
    q1 = conjunctive_query((x,), [atom("R", x, 1)])
    q2 = conjunctive_query((x,), [atom("R", x, 2)])
    return union_query((x,), [q1, q2])


def positive_existential():
    x, y = variables("x", "y")
    body = Exists(y, And(Or(RelationAtom("R", (x, y)), RelationAtom("S", (x, y)))))
    return Query((x,), body)


def full_fo():
    x = Var("x")
    body = And(
        Exists(Var("y"), RelationAtom("R", (x, Var("y")))),
        Not(RelationAtom("S", (x, x))),
    )
    return Query((x,), body)


class TestFragments:
    def test_sp_queries_classify_as_sp(self):
        assert classify(company.query_q1_salary()) == QueryLanguage.SP

    def test_cq_classification(self):
        q = simple_cq()
        assert is_conjunctive(q)
        assert is_union_of_conjunctive(q)
        assert is_positive_existential(q)
        assert classify(q) == QueryLanguage.CQ

    def test_ucq_classification(self):
        q = simple_ucq()
        assert not is_conjunctive(q)
        assert is_union_of_conjunctive(q)
        assert classify(q) == QueryLanguage.UCQ

    def test_positive_existential_classification(self):
        q = positive_existential()
        assert not is_conjunctive(q)
        assert is_positive_existential(q)
        assert classify(q) == QueryLanguage.EFO_PLUS

    def test_fo_classification(self):
        q = full_fo()
        assert not is_positive_existential(q)
        assert is_first_order(q)
        assert classify(q) == QueryLanguage.FO

    def test_sp_to_query_is_cq(self):
        assert classify(company.query_q3_address().to_query()) == QueryLanguage.CQ

    def test_inequality_comparison_leaves_cq(self):
        x, y = variables("x", "y")
        q = conjunctive_query((x,), [atom("R", x, y), Compare(y, "!=", 1)])
        # non-equality selections push the query out of the pure CQ fragment
        assert classify(q) in (QueryLanguage.EFO_PLUS, QueryLanguage.UCQ)

    def test_language_order(self):
        assert QueryLanguage.ORDERED == ("SP", "CQ", "UCQ", "∃FO+", "FO")
