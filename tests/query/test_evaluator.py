"""Unit tests for query evaluation over normal instances."""

import pytest

from repro.core.instance import NormalInstance
from repro.core.schema import RelationSchema
from repro.core.tuples import RelationTuple
from repro.exceptions import EvaluationError
from repro.query.ast import (
    And,
    Compare,
    Constant,
    Exists,
    ForAll,
    Not,
    Or,
    Query,
    RelationAtom,
    SPQuery,
    Var,
)
from repro.query.builders import atom, conjunctive_query, eq, union_query, variables
from repro.query.evaluator import active_domain, evaluate, evaluate_boolean, evaluate_naive


@pytest.fixture()
def schema():
    return RelationSchema("R", ("A", "B"))


@pytest.fixture()
def database(schema):
    instance = NormalInstance(schema)
    rows = [("e1", 1, 10), ("e2", 2, 20), ("e3", 2, 30)]
    for index, (eid, a, b) in enumerate(rows):
        instance.add(RelationTuple(schema, f"t{index}", {"EID": eid, "A": a, "B": b}))
    return {"R": instance}


class TestPositiveEvaluation:
    def test_full_scan(self, database):
        x, y, z = variables("x", "y", "z")
        query = Query((x, y, z), RelationAtom("R", (x, y, z)))
        assert len(evaluate(query, database)) == 3

    def test_selection_via_constant(self, database):
        x, y = variables("x", "y")
        query = conjunctive_query((x, y), [atom("R", x, 2, y)])
        assert evaluate(query, database) == frozenset({("e2", 20), ("e3", 30)})

    def test_selection_via_comparison(self, database):
        x, y, z = variables("x", "y", "z")
        query = conjunctive_query((x,), [atom("R", x, y, z), eq(y, 1)])
        assert evaluate(query, database) == frozenset({("e1",)})

    def test_join_on_shared_variable(self, database):
        x1, x2, a = variables("x1", "x2", "a")
        query = conjunctive_query(
            (x1, x2),
            [atom("R", x1, a, Var("b1")), atom("R", x2, a, Var("b2")), eq(Var("b1"), 10)],
        )
        # entity e1 is the only one with B=10; it joins with itself on A=1
        assert evaluate(query, database) == frozenset({("e1", "e1")})

    def test_union_query(self, database):
        x = Var("x")
        q1 = conjunctive_query((x,), [atom("R", x, 1, Var("b"))])
        q2 = conjunctive_query((x,), [atom("R", x, Var("a"), 30)])
        query = union_query((x,), [q1, q2])
        assert evaluate(query, database) == frozenset({("e1",), ("e3",)})

    def test_boolean_query(self, database):
        query = conjunctive_query((), [atom("R", Var("x"), 2, Var("b"))])
        assert evaluate_boolean(query, database)
        empty = conjunctive_query((), [atom("R", Var("x"), 99, Var("b"))])
        assert not evaluate_boolean(empty, database)

    def test_unknown_relation_raises(self, database):
        query = conjunctive_query((), [atom("Nope", Var("x"), Var("a"), Var("b"))])
        with pytest.raises(EvaluationError):
            evaluate(query, database)

    def test_arity_mismatch_raises(self, database):
        query = conjunctive_query((), [atom("R", Var("x"), Var("a"))])
        with pytest.raises(EvaluationError):
            evaluate(query, database)


class TestFirstOrderEvaluation:
    def test_negation(self, database):
        x = Var("x")
        body = And(
            Exists((Var("a"), Var("b")), RelationAtom("R", (x, Var("a"), Var("b")))),
            Not(Exists(Var("b"), RelationAtom("R", (x, Constant(1), Var("b"))))),
        )
        query = Query((x,), body)
        assert evaluate(query, database) == frozenset({("e2",), ("e3",)})

    def test_universal_quantification(self, database):
        # "every entity with A=2 has B >= 20" — boolean, true on this database
        x, b = variables("x", "b")
        body = ForAll(
            (x, b),
            Or(
                Not(RelationAtom("R", (x, Constant(2), b))),
                Compare(b, ">=", 20),
            ),
        )
        assert evaluate_boolean(Query((), body), database)

    def test_universal_quantification_false_case(self, database):
        x, b = variables("x", "b")
        body = ForAll(
            (x, b),
            Or(
                Not(RelationAtom("R", (x, Constant(2), b))),
                Compare(b, ">", 20),
            ),
        )
        assert not evaluate_boolean(Query((), body), database)

    def test_active_domain_contains_all_values_and_query_constants(self, database):
        x = Var("x")
        query = conjunctive_query((x,), [atom("R", x, 77, Var("b"))])
        domain = active_domain(database, query)
        assert 77 in domain and "e1" in domain and 30 in domain


class TestDuplicateHeadVariables:
    """Regression: a head like ``(x, x)`` must only admit tuples ``(a, a)``.

    The seed FO path enumerated ``domain^|head|`` and built the assignment
    with ``dict(zip(head_names, values))``, collapsing duplicates so that
    ``(a, b)`` with ``a != b`` could be admitted."""

    def test_duplicate_head_positive_path(self, database):
        y, b = variables("y", "b")
        body = Exists((Var("e"), b), RelationAtom("R", (Var("e"), y, b)))
        query = Query((y, y), body)
        expected = frozenset({(1, 1), (2, 2)})
        assert evaluate(query, database) == expected
        assert evaluate_naive(query, database) == expected

    def test_duplicate_head_first_order_path(self, database):
        y, b = variables("y", "b")
        body = And(
            Exists((Var("e"), b), RelationAtom("R", (Var("e"), y, b))),
            Not(Compare(y, "=", Constant(99))),
        )
        query = Query((y, y), body)
        expected = frozenset({(1, 1), (2, 2)})
        assert evaluate(query, database) == expected
        assert evaluate_naive(query, database) == expected


class TestQuantifierShadowing:
    """Regression: a quantified variable reusing an outer variable's name is a
    fresh variable, not an equality constraint on the outer binding."""

    def test_exists_shadows_outer_binding_in_positive_path(self, database):
        x, y, a, b = variables("x", "y", "a", "b")
        # inner ∃a must not be constrained to equal the outer a bound by the
        # first atom; only e3 has B=30
        body = And(
            RelationAtom("R", (x, a, b)),
            Exists(a, RelationAtom("R", (y, a, Constant(30)))),
        )
        query = Query((x, y), Exists((a, b), body))
        expected = frozenset({("e1", "e3"), ("e2", "e3"), ("e3", "e3")})
        assert evaluate(query, database) == expected
        assert evaluate_naive(query, database) == expected

    def test_exists_shadows_head_variable_in_first_order_path(self, database):
        x, a, b = variables("x", "a", "b")
        # inner ∃x shadows the head variable x; R(x', 1, b') is satisfiable,
        # so the negation kills every candidate
        body = And(
            Exists((a, b), RelationAtom("R", (x, a, b))),
            Not(Exists((x, b), RelationAtom("R", (x, Constant(1), b)))),
        )
        query = Query((x,), body)
        assert evaluate(query, database) == frozenset()
        assert evaluate_naive(query, database) == frozenset()

    def test_forall_shadows_outer_binding(self, database):
        x, a, b = variables("x", "a", "b")
        # ∀x,b (R(x,2,b) → b >= 20) is true regardless of the outer head x
        inner = ForAll(
            (x, b),
            Or(Not(RelationAtom("R", (x, Constant(2), b))), Compare(b, ">=", 20)),
        )
        body = And(Exists((a, b), RelationAtom("R", (x, a, b))), inner)
        query = Query((x,), body)
        expected = frozenset({("e1",), ("e2",), ("e3",)})
        assert evaluate(query, database) == expected
        assert evaluate_naive(query, database) == expected


class TestEngineAgreement:
    """The indexed engine and the retained seed engine agree on the unit
    database for every query shape exercised above."""

    def test_agreement_on_unit_queries(self, database):
        x, y, z, a, b = variables("x", "y", "z", "a", "b")
        queries = [
            Query((x, y, z), RelationAtom("R", (x, y, z))),
            conjunctive_query((x, y), [atom("R", x, 2, y)]),
            conjunctive_query((x,), [atom("R", x, y, z), eq(y, 1)]),
            union_query(
                (x,),
                [
                    conjunctive_query((x,), [atom("R", x, 1, Var("b"))]),
                    conjunctive_query((x,), [atom("R", x, Var("a"), 30)]),
                ],
            ),
            Query(
                (x,),
                And(
                    Exists((a, b), RelationAtom("R", (x, a, b))),
                    Not(Exists(b, RelationAtom("R", (x, Constant(1), b)))),
                ),
            ),
        ]
        for query in queries:
            assert evaluate(query, database) == evaluate_naive(query, database)


class TestQueryEngineCaching:
    def test_engine_caches_by_database_value(self, database, schema):
        from repro.query.engine import QueryEngine

        x, y = variables("x", "y")
        engine = QueryEngine(conjunctive_query((x, y), [atom("R", x, 2, y)]))
        first = engine.answers(database)
        assert engine.cache_info()["misses"] == 1
        # a value-identical copy with different tids hits the cache
        clone = NormalInstance(schema)
        for index, (eid, a, b) in enumerate([("e1", 1, 10), ("e2", 2, 20), ("e3", 2, 30)]):
            clone.add(RelationTuple(schema, f"other{index}", {"EID": eid, "A": a, "B": b}))
        assert engine.answers({"R": clone}) == first
        assert engine.cache_info()["hits"] == 1

    def test_fo_engine_fingerprints_whole_database(self, schema):
        """Regression: FO answers depend on the active domain (all relations),
        so the cache key must cover relations the query never reads."""
        from repro.query.engine import QueryEngine

        other = RelationSchema("S", ("C",))
        r = NormalInstance(schema)
        r.add(RelationTuple(schema, "t0", {"EID": "e1", "A": 1, "B": 2}))
        s1 = NormalInstance(other)
        s1.add(RelationTuple(other, "u0", {"EID": "s1", "C": 42}))
        s2 = NormalInstance(other)
        s2.add(RelationTuple(other, "u0", {"EID": "s2", "C": 43}))
        x = Var("x")
        query = Query((x,), Not(Exists((Var("a"), Var("b")), RelationAtom("R", (x, Var("a"), Var("b"))))))
        engine = QueryEngine(query)
        first = engine.answers({"R": r, "S": s1})
        second = engine.answers({"R": r, "S": s2})
        assert first == evaluate(query, {"R": r, "S": s1})
        assert second == evaluate(query, {"R": r, "S": s2})
        assert first != second  # different active domains -> different answers

    def test_engine_sees_new_tuples(self, database, schema):
        from repro.query.engine import QueryEngine

        x, y = variables("x", "y")
        engine = QueryEngine(conjunctive_query((x, y), [atom("R", x, 2, y)]))
        assert engine.answers(database) == frozenset({("e2", 20), ("e3", 30)})
        database["R"].add(RelationTuple(schema, "t99", {"EID": "e9", "A": 2, "B": 90}))
        assert ("e9", 90) in engine.answers(database)


class TestSPEvaluation:
    def test_sp_query_evaluation(self):
        from repro.workloads import company

        schema = company.emp_schema()
        instance = NormalInstance(schema)
        instance.add(
            RelationTuple(
                schema,
                "lst1",
                {"EID": "e", "FN": "Mary", "LN": "Dupont", "address": "6 Main St",
                 "salary": 80, "status": "married"},
            )
        )
        q1 = company.query_q1_salary()
        assert evaluate(q1, {"Emp": instance}) == frozenset({(80,)})
        q_other = SPQuery("Emp", schema, ["LN"], eq_const={"FN": "Bob"})
        assert evaluate(q_other, {"Emp": instance}) == frozenset()
