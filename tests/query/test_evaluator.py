"""Unit tests for query evaluation over normal instances."""

import pytest

from repro.core.instance import NormalInstance
from repro.core.schema import RelationSchema
from repro.core.tuples import RelationTuple
from repro.exceptions import EvaluationError
from repro.query.ast import (
    And,
    Compare,
    Constant,
    Exists,
    ForAll,
    Not,
    Or,
    Query,
    RelationAtom,
    SPQuery,
    Var,
)
from repro.query.builders import atom, conjunctive_query, eq, union_query, variables
from repro.query.evaluator import active_domain, evaluate, evaluate_boolean


@pytest.fixture()
def schema():
    return RelationSchema("R", ("A", "B"))


@pytest.fixture()
def database(schema):
    instance = NormalInstance(schema)
    rows = [("e1", 1, 10), ("e2", 2, 20), ("e3", 2, 30)]
    for index, (eid, a, b) in enumerate(rows):
        instance.add(RelationTuple(schema, f"t{index}", {"EID": eid, "A": a, "B": b}))
    return {"R": instance}


class TestPositiveEvaluation:
    def test_full_scan(self, database):
        x, y, z = variables("x", "y", "z")
        query = Query((x, y, z), RelationAtom("R", (x, y, z)))
        assert len(evaluate(query, database)) == 3

    def test_selection_via_constant(self, database):
        x, y = variables("x", "y")
        query = conjunctive_query((x, y), [atom("R", x, 2, y)])
        assert evaluate(query, database) == frozenset({("e2", 20), ("e3", 30)})

    def test_selection_via_comparison(self, database):
        x, y, z = variables("x", "y", "z")
        query = conjunctive_query((x,), [atom("R", x, y, z), eq(y, 1)])
        assert evaluate(query, database) == frozenset({("e1",)})

    def test_join_on_shared_variable(self, database):
        x1, x2, a = variables("x1", "x2", "a")
        query = conjunctive_query(
            (x1, x2),
            [atom("R", x1, a, Var("b1")), atom("R", x2, a, Var("b2")), eq(Var("b1"), 10)],
        )
        # entity e1 is the only one with B=10; it joins with itself on A=1
        assert evaluate(query, database) == frozenset({("e1", "e1")})

    def test_union_query(self, database):
        x = Var("x")
        q1 = conjunctive_query((x,), [atom("R", x, 1, Var("b"))])
        q2 = conjunctive_query((x,), [atom("R", x, Var("a"), 30)])
        query = union_query((x,), [q1, q2])
        assert evaluate(query, database) == frozenset({("e1",), ("e3",)})

    def test_boolean_query(self, database):
        query = conjunctive_query((), [atom("R", Var("x"), 2, Var("b"))])
        assert evaluate_boolean(query, database)
        empty = conjunctive_query((), [atom("R", Var("x"), 99, Var("b"))])
        assert not evaluate_boolean(empty, database)

    def test_unknown_relation_raises(self, database):
        query = conjunctive_query((), [atom("Nope", Var("x"), Var("a"), Var("b"))])
        with pytest.raises(EvaluationError):
            evaluate(query, database)

    def test_arity_mismatch_raises(self, database):
        query = conjunctive_query((), [atom("R", Var("x"), Var("a"))])
        with pytest.raises(EvaluationError):
            evaluate(query, database)


class TestFirstOrderEvaluation:
    def test_negation(self, database):
        x = Var("x")
        body = And(
            Exists((Var("a"), Var("b")), RelationAtom("R", (x, Var("a"), Var("b")))),
            Not(Exists(Var("b"), RelationAtom("R", (x, Constant(1), Var("b"))))),
        )
        query = Query((x,), body)
        assert evaluate(query, database) == frozenset({("e2",), ("e3",)})

    def test_universal_quantification(self, database):
        # "every entity with A=2 has B >= 20" — boolean, true on this database
        x, b = variables("x", "b")
        body = ForAll(
            (x, b),
            Or(
                Not(RelationAtom("R", (x, Constant(2), b))),
                Compare(b, ">=", 20),
            ),
        )
        assert evaluate_boolean(Query((), body), database)

    def test_universal_quantification_false_case(self, database):
        x, b = variables("x", "b")
        body = ForAll(
            (x, b),
            Or(
                Not(RelationAtom("R", (x, Constant(2), b))),
                Compare(b, ">", 20),
            ),
        )
        assert not evaluate_boolean(Query((), body), database)

    def test_active_domain_contains_all_values_and_query_constants(self, database):
        x = Var("x")
        query = conjunctive_query((x,), [atom("R", x, 77, Var("b"))])
        domain = active_domain(database, query)
        assert 77 in domain and "e1" in domain and 30 in domain


class TestSPEvaluation:
    def test_sp_query_evaluation(self):
        from repro.workloads import company

        schema = company.emp_schema()
        instance = NormalInstance(schema)
        instance.add(
            RelationTuple(
                schema,
                "lst1",
                {"EID": "e", "FN": "Mary", "LN": "Dupont", "address": "6 Main St",
                 "salary": 80, "status": "married"},
            )
        )
        q1 = company.query_q1_salary()
        assert evaluate(q1, {"Emp": instance}) == frozenset({(80,)})
        q_other = SPQuery("Emp", schema, ["LN"], eq_const={"FN": "Bob"})
        assert evaluate(q_other, {"Emp": instance}) == frozenset()
