"""Unit tests for denial constraints."""

import pytest

from repro.core.denial import AttrRef, Comparison, Const, CurrencyAtom, DenialConstraint
from repro.core.instance import TemporalInstance
from repro.core.schema import RelationSchema
from repro.exceptions import ConstraintError


@pytest.fixture()
def schema():
    return RelationSchema("R", ("A", "B"))


@pytest.fixture()
def instance(schema):
    return TemporalInstance.from_rows(
        schema,
        {
            "t1": {"EID": "e", "A": 1, "B": 10},
            "t2": {"EID": "e", "A": 2, "B": 20},
            "u1": {"EID": "f", "A": 5, "B": 50},
        },
    )


def monotone_constraint(schema):
    """s[A] > t[A]  →  t ≺_A s (mirrors ϕ1 of the paper)."""
    return DenialConstraint(
        schema,
        ("s", "t"),
        body=[Comparison(AttrRef("s", "A"), ">", AttrRef("t", "A"))],
        head=CurrencyAtom("t", "A", "s"),
    )


def propagation_constraint(schema):
    """t ≺_A s  →  t ≺_B s (mirrors ϕ3 of the paper)."""
    return DenialConstraint(
        schema,
        ("s", "t"),
        body=[CurrencyAtom("t", "A", "s")],
        head=CurrencyAtom("t", "B", "s"),
    )


class TestConstruction:
    def test_requires_variables(self, schema):
        with pytest.raises(ConstraintError):
            DenialConstraint(schema, (), [], CurrencyAtom("s", "A", "t"))

    def test_rejects_duplicate_variables(self, schema):
        with pytest.raises(ConstraintError):
            DenialConstraint(schema, ("s", "s"), [], CurrencyAtom("s", "A", "s"))

    def test_rejects_unbound_variable_in_head(self, schema):
        with pytest.raises(ConstraintError):
            DenialConstraint(schema, ("s",), [], CurrencyAtom("s", "A", "t"))

    def test_rejects_unknown_attribute(self, schema):
        from repro.exceptions import CurrencyError

        with pytest.raises(CurrencyError):
            DenialConstraint(schema, ("s", "t"), [], CurrencyAtom("s", "Z", "t"))

    def test_rejects_unknown_operator(self, schema):
        with pytest.raises(ConstraintError):
            Comparison(AttrRef("s", "A"), "~", Const(1))

    def test_rejects_unbound_variable_in_comparison(self, schema):
        with pytest.raises(ConstraintError):
            DenialConstraint(
                schema,
                ("s",),
                [Comparison(AttrRef("x", "A"), "=", Const(1))],
                CurrencyAtom("s", "A", "s"),
            )


class TestSatisfaction:
    def test_satisfied_when_head_pair_present(self, schema, instance):
        completion = instance.copy()
        completion.add_order("A", "t1", "t2")
        completion.add_order("B", "t1", "t2")
        assert monotone_constraint(schema).satisfied_by(completion)

    def test_violated_when_head_pair_missing(self, schema, instance):
        completion = instance.copy()
        completion.add_order("A", "t2", "t1")  # contradicts the monotone rule
        completion.add_order("B", "t1", "t2")
        assert not monotone_constraint(schema).satisfied_by(completion)

    def test_currency_premise_triggers_head(self, schema, instance):
        completion = instance.copy()
        completion.add_order("A", "t1", "t2")
        completion.add_order("B", "t2", "t1")
        assert not propagation_constraint(schema).satisfied_by(completion)
        # flipping B satisfies it
        fixed = instance.copy()
        fixed.add_order("A", "t1", "t2")
        fixed.add_order("B", "t1", "t2")
        assert propagation_constraint(schema).satisfied_by(fixed)

    def test_constraint_applies_per_entity_only(self, schema, instance):
        # u1 (entity f) has the largest A value but no same-entity partner, so
        # the monotone rule imposes nothing across entities.
        completion = instance.copy()
        completion.add_order("A", "t1", "t2")
        completion.add_order("B", "t1", "t2")
        assert monotone_constraint(schema).satisfied_by(completion)

    def test_violations_yield_witnesses(self, schema, instance):
        completion = instance.copy()
        completion.add_order("A", "t2", "t1")
        completion.add_order("B", "t1", "t2")
        witnesses = list(monotone_constraint(schema).violations(completion))
        assert witnesses
        assert {w["s"].tid for w in witnesses} == {"t2"}

    def test_unsatisfiable_head_means_body_must_fail(self, schema, instance):
        # head t ≺ t encodes "the body must never hold"
        constraint = DenialConstraint(
            schema,
            ("s", "t"),
            body=[Comparison(AttrRef("s", "A"), ">", AttrRef("t", "A"))],
            head=CurrencyAtom("t", "A", "t"),
        )
        completion = instance.copy()
        completion.add_order("A", "t1", "t2")
        completion.add_order("B", "t1", "t2")
        assert not constraint.satisfied_by(completion)


class TestGrounding:
    def test_grounded_implications_filter_value_predicates(self, schema, instance):
        grounded = list(monotone_constraint(schema).grounded_implications(instance))
        # only the assignment s=t2, t=t1 satisfies s[A] > t[A] within entity e
        assert len(grounded) == 1
        assert grounded[0].head == ("A", "t1", "t2")
        assert grounded[0].premises == ()

    def test_grounded_implications_carry_premises(self, schema, instance):
        grounded = list(propagation_constraint(schema).grounded_implications(instance))
        heads = {g.head for g in grounded}
        assert ("B", "t1", "t2") in heads
        premises = {g.premises for g in grounded if g.head == ("B", "t1", "t2")}
        assert (("A", "t1", "t2"),) in premises

    def test_grounded_unsatisfiable_head_is_none(self, schema, instance):
        constraint = DenialConstraint(
            schema,
            ("s", "t"),
            body=[Comparison(AttrRef("s", "A"), ">", AttrRef("t", "A"))],
            head=CurrencyAtom("t", "A", "t"),
        )
        grounded = list(constraint.grounded_implications(instance))
        assert any(g.head is None for g in grounded)

    def test_constant_comparisons(self, schema, instance):
        constraint = DenialConstraint(
            schema,
            ("s", "t"),
            body=[
                Comparison(AttrRef("s", "A"), "=", Const(2)),
                Comparison(AttrRef("t", "A"), "=", Const(1)),
            ],
            head=CurrencyAtom("t", "B", "s"),
        )
        grounded = list(constraint.grounded_implications(instance))
        assert [g.head for g in grounded] == [("B", "t1", "t2")]
