"""Unit tests for the strict-partial-order data structure."""

import pytest

from repro.core.partial_order import PartialOrder
from repro.exceptions import CycleError, PartialOrderError


class TestAddAndQuery:
    def test_add_records_pair(self):
        order = PartialOrder()
        assert order.add("a", "b")
        assert order.precedes("a", "b")
        assert not order.precedes("b", "a")

    def test_add_is_idempotent(self):
        order = PartialOrder(pairs=[("a", "b")])
        assert not order.add("a", "b")

    def test_transitive_closure_maintained(self):
        order = PartialOrder(pairs=[("a", "b"), ("b", "c")])
        assert order.precedes("a", "c")

    def test_closure_through_new_edge(self):
        order = PartialOrder(pairs=[("a", "b"), ("c", "d")])
        order.add("b", "c")
        assert order.precedes("a", "d")

    def test_reflexive_pair_rejected(self):
        with pytest.raises(CycleError):
            PartialOrder().add("a", "a")

    def test_direct_cycle_rejected(self):
        order = PartialOrder(pairs=[("a", "b")])
        with pytest.raises(CycleError):
            order.add("b", "a")

    def test_indirect_cycle_rejected(self):
        order = PartialOrder(pairs=[("a", "b"), ("b", "c")])
        with pytest.raises(CycleError):
            order.add("c", "a")

    def test_comparable(self):
        order = PartialOrder(pairs=[("a", "b")])
        order.add_element("c")
        assert order.comparable("a", "b")
        assert order.comparable("b", "a")
        assert not order.comparable("a", "c")

    def test_pair_count_and_len(self):
        order = PartialOrder(pairs=[("a", "b"), ("b", "c")])
        assert len(order) == order.pair_count() == 3  # includes the closure pair

    def test_contains_protocol(self):
        order = PartialOrder(pairs=[("a", "b")])
        assert ("a", "b") in order
        assert ("b", "a") not in order


class TestSetOperations:
    def test_copy_is_independent(self):
        order = PartialOrder(pairs=[("a", "b")])
        clone = order.copy()
        clone.add("b", "c")
        assert not order.precedes("b", "c")

    def test_union(self):
        first = PartialOrder(pairs=[("a", "b")])
        second = PartialOrder(pairs=[("b", "c")])
        merged = PartialOrder.union(first, second)
        assert merged.precedes("a", "c")
        assert not first.precedes("a", "c")

    def test_union_conflicting_orders_raises(self):
        first = PartialOrder(pairs=[("a", "b")])
        second = PartialOrder(pairs=[("b", "a")])
        with pytest.raises(CycleError):
            PartialOrder.union(first, second)

    def test_contains_order(self):
        big = PartialOrder(pairs=[("a", "b"), ("b", "c")])
        small = PartialOrder(pairs=[("a", "c")])
        assert big.contains(small)
        assert not small.contains(big)

    def test_restrict(self):
        order = PartialOrder(pairs=[("a", "b"), ("b", "c")])
        restricted = order.restrict({"a", "c"})
        assert restricted.precedes("a", "c")
        assert restricted.elements() == frozenset({"a", "c"})

    def test_equality(self):
        assert PartialOrder(pairs=[("a", "b")]) == PartialOrder(pairs=[("a", "b")])
        assert PartialOrder(pairs=[("a", "b")]) != PartialOrder(pairs=[("b", "a")])


class TestExtremaAndExtensions:
    def test_maxima_and_minima(self):
        order = PartialOrder(pairs=[("a", "b"), ("a", "c")])
        assert set(order.maxima()) == {"b", "c"}
        assert order.minima() == ["a"]

    def test_maxima_within_subset(self):
        order = PartialOrder(pairs=[("a", "b"), ("b", "c")])
        assert order.maxima({"a", "b"}) == ["b"]

    def test_greatest_requires_totality(self):
        order = PartialOrder(pairs=[("a", "b"), ("a", "c")])
        with pytest.raises(PartialOrderError):
            order.greatest({"a", "b", "c"})

    def test_greatest_of_chain(self):
        order = PartialOrder(pairs=[("a", "b"), ("b", "c")])
        assert order.greatest({"a", "b", "c"}) == "c"

    def test_greatest_of_empty_raises(self):
        with pytest.raises(PartialOrderError):
            PartialOrder().greatest(set())

    def test_is_total_on(self):
        order = PartialOrder(pairs=[("a", "b"), ("b", "c")])
        assert order.is_total_on({"a", "b", "c"})
        order.add_element("d")
        assert not order.is_total_on({"a", "d"})

    def test_topological_order_respects_pairs(self):
        order = PartialOrder(pairs=[("a", "b"), ("b", "c")])
        topo = order.topological_order()
        assert topo.index("a") < topo.index("b") < topo.index("c")

    def test_linear_extensions_of_antichain(self):
        order = PartialOrder(["a", "b", "c"])
        extensions = list(order.linear_extensions({"a", "b", "c"}))
        assert len(extensions) == 6

    def test_linear_extensions_of_chain_is_unique(self):
        order = PartialOrder(pairs=[("a", "b"), ("b", "c")])
        assert list(order.linear_extensions({"a", "b", "c"})) == [("a", "b", "c")]

    def test_linear_extensions_respect_constraints(self):
        order = PartialOrder(pairs=[("a", "b")])
        order.add_element("c")
        extensions = set(order.linear_extensions({"a", "b", "c"}))
        assert all(ext.index("a") < ext.index("b") for ext in extensions)
        assert len(extensions) == 3
