"""Unit tests for relation tuples."""

import pytest

from repro.core.schema import RelationSchema
from repro.core.tuples import RelationTuple
from repro.exceptions import TupleError


@pytest.fixture()
def schema():
    return RelationSchema("R", ("A", "B"))


class TestRelationTuple:
    def test_construction_and_access(self, schema):
        t = RelationTuple(schema, "t1", {"EID": "e", "A": 1, "B": 2})
        assert t.tid == "t1"
        assert t.eid == "e"
        assert t["A"] == 1
        assert t["B"] == 2

    def test_missing_attribute_rejected(self, schema):
        with pytest.raises(TupleError):
            RelationTuple(schema, "t1", {"EID": "e", "A": 1})

    def test_extra_attribute_rejected(self, schema):
        with pytest.raises(TupleError):
            RelationTuple(schema, "t1", {"EID": "e", "A": 1, "B": 2, "C": 3})

    def test_unknown_attribute_lookup_raises(self, schema):
        t = RelationTuple(schema, "t1", {"EID": "e", "A": 1, "B": 2})
        with pytest.raises(TupleError):
            t["Z"]

    def test_get_with_default(self, schema):
        t = RelationTuple(schema, "t1", {"EID": "e", "A": 1, "B": 2})
        assert t.get("A") == 1
        assert t.get("Z", "missing") == "missing"

    def test_value_tuple_is_eid_first(self, schema):
        t = RelationTuple(schema, "t1", {"B": 2, "A": 1, "EID": "e"})
        assert t.value_tuple() == ("e", 1, 2)

    def test_projection(self, schema):
        t = RelationTuple(schema, "t1", {"EID": "e", "A": 1, "B": 2})
        assert t.projection(("B", "A")) == (2, 1)

    def test_equality_by_schema_and_tid(self, schema):
        a = RelationTuple(schema, "t1", {"EID": "e", "A": 1, "B": 2})
        b = RelationTuple(schema, "t1", {"EID": "e", "A": 9, "B": 9})
        c = RelationTuple(schema, "t2", {"EID": "e", "A": 1, "B": 2})
        assert a == b  # identity is (schema, tid)
        assert a != c
        assert hash(a) == hash(b)

    def test_same_values(self, schema):
        a = RelationTuple(schema, "t1", {"EID": "e", "A": 1, "B": 2})
        b = RelationTuple(schema, "t2", {"EID": "e", "A": 1, "B": 2})
        c = RelationTuple(schema, "t3", {"EID": "e", "A": 1, "B": 3})
        assert a.same_values(b)
        assert not a.same_values(c)

    def test_values_returns_fresh_dict(self, schema):
        t = RelationTuple(schema, "t1", {"EID": "e", "A": 1, "B": 2})
        values = t.values()
        values["A"] = 99
        assert t["A"] == 1

    def test_iteration_yields_values(self, schema):
        t = RelationTuple(schema, "t1", {"EID": "e", "A": 1, "B": 2})
        assert list(t) == ["e", 1, 2]
