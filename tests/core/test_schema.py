"""Unit tests for relation schemas."""

import pytest

from repro.core.schema import RelationSchema
from repro.exceptions import SchemaError


class TestRelationSchema:
    def test_basic_construction(self):
        schema = RelationSchema("Emp", ("FN", "LN"))
        assert schema.name == "Emp"
        assert schema.attributes == ("FN", "LN")
        assert schema.eid == "EID"

    def test_all_attributes_puts_eid_first(self):
        schema = RelationSchema("R", ("A", "B"))
        assert schema.all_attributes == ("EID", "A", "B")

    def test_custom_eid_attribute(self):
        schema = RelationSchema("Dept", ("budget",), eid="dname")
        assert schema.eid == "dname"
        assert schema.all_attributes == ("dname", "budget")

    def test_arity_counts_ordinary_attributes(self):
        assert RelationSchema("R", ("A", "B", "C")).arity == 3

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", ("A",))

    def test_no_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ())

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("A", "A"))

    def test_eid_clashing_with_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("A", "EID"))

    def test_has_attribute(self):
        schema = RelationSchema("R", ("A", "B"))
        assert schema.has_attribute("A")
        assert not schema.has_attribute("EID")
        assert not schema.has_attribute("Z")

    def test_check_attribute_accepts_eid_and_ordinary(self):
        schema = RelationSchema("R", ("A",))
        assert schema.check_attribute("A") == "A"
        assert schema.check_attribute("EID") == "EID"

    def test_check_attribute_rejects_unknown(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("A",)).check_attribute("Z")

    def test_check_attributes_rejects_eid(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("A",)).check_attributes(["EID"])

    def test_check_attributes_returns_tuple(self):
        schema = RelationSchema("R", ("A", "B"))
        assert schema.check_attributes(["B", "A"]) == ("B", "A")

    def test_schemas_are_value_equal(self):
        assert RelationSchema("R", ("A",)) == RelationSchema("R", ("A",))
        assert RelationSchema("R", ("A",)) != RelationSchema("R", ("B",))
