"""Unit tests for specifications of data currency."""

import pytest

from repro.core.copy_function import CopyFunction, CopySignature
from repro.core.denial import AttrRef, Comparison, CurrencyAtom, DenialConstraint
from repro.core.instance import TemporalInstance
from repro.core.schema import RelationSchema
from repro.core.specification import Specification
from repro.exceptions import SpecificationError
from repro.workloads import company


class TestConstruction:
    def test_requires_at_least_one_instance(self):
        with pytest.raises(SpecificationError):
            Specification({})

    def test_constraint_for_unknown_instance_rejected(self):
        schema = RelationSchema("R", ("A",))
        instance = TemporalInstance.from_rows(schema, {"t": {"EID": "e", "A": 1}})
        constraint = DenialConstraint(
            schema, ("s", "t"),
            [Comparison(AttrRef("s", "A"), ">", AttrRef("t", "A"))],
            CurrencyAtom("t", "A", "s"),
        )
        with pytest.raises(SpecificationError):
            Specification({"R": instance}, constraints={"S": [constraint]})

    def test_constraint_schema_mismatch_rejected(self):
        schema = RelationSchema("R", ("A",))
        other = RelationSchema("S", ("A",))
        instance = TemporalInstance.from_rows(schema, {"t": {"EID": "e", "A": 1}})
        constraint = DenialConstraint(
            other, ("s", "t"),
            [Comparison(AttrRef("s", "A"), ">", AttrRef("t", "A"))],
            CurrencyAtom("t", "A", "s"),
        )
        with pytest.raises(SpecificationError):
            Specification({"R": instance}, constraints={"R": [constraint]})

    def test_copy_function_unknown_instances_rejected(self):
        spec_schema = RelationSchema("R", ("A",))
        instance = TemporalInstance.from_rows(spec_schema, {"t": {"EID": "e", "A": 1}})
        cf = CopyFunction(
            "cf", CopySignature(spec_schema, ("A",), spec_schema, ("A",)), target="R", source="Z"
        )
        with pytest.raises(SpecificationError):
            Specification({"R": instance}, copy_functions=[cf])

    def test_copy_function_violating_copying_condition_rejected(self):
        emp = company.emp_instance()
        dept = company.dept_instance()
        bad = CopyFunction(
            "bad",
            CopySignature(company.dept_schema(), ("mgrAddr",), company.emp_schema(), ("address",)),
            target="Dept",
            source="Emp",
            mapping={"t1": "s3"},
        )
        with pytest.raises(Exception):
            Specification({"Emp": emp, "Dept": dept}, copy_functions=[bad])

    def test_company_specification_builds(self, company_spec):
        assert set(company_spec.instance_names()) == {"Emp", "Dept"}
        assert company_spec.has_denial_constraints()
        assert len(company_spec.copy_functions) == 1
        assert company_spec.total_size() == 9


class TestAccessors:
    def test_unknown_instance_raises(self, company_spec):
        with pytest.raises(SpecificationError):
            company_spec.instance("Nope")

    def test_constraints_for(self, company_spec):
        assert len(company_spec.constraints_for("Dept")) == 1
        assert company_spec.constraints_for("Emp")

    def test_copy_functions_into(self, company_spec):
        assert [cf.name for cf in company_spec.copy_functions_into("Dept")] == ["rho_dept"]
        assert company_spec.copy_functions_into("Emp") == []

    def test_copy_is_independent(self, company_spec):
        clone = company_spec.copy()
        clone.instance("Emp").add_order("salary", "s1", "s2")
        assert not company_spec.instance("Emp").precedes("salary", "s1", "s2")


class TestCompletionChecking:
    def test_example_2_3_completion_is_consistent(self, company_spec):
        """The completion D^c_0 of Example 2.3 belongs to Mod(S0)."""
        emp = company_spec.instance("Emp").copy()
        dept = company_spec.instance("Dept").copy()
        for attribute in emp.schema.attributes:
            emp.add_order(attribute, "s1", "s2")
            emp.add_order(attribute, "s2", "s3")
        for attribute in dept.schema.attributes:
            dept.add_order(attribute, "t1", "t2")
            dept.add_order(attribute, "t2", "t4")
            dept.add_order(attribute, "t4", "t3")
        assert company_spec.is_consistent_completion({"Emp": emp, "Dept": dept})

    def test_reversed_salary_order_is_inconsistent(self, company_spec):
        emp = company_spec.instance("Emp").copy()
        dept = company_spec.instance("Dept").copy()
        for attribute in emp.schema.attributes:
            emp.add_order(attribute, "s3", "s2")
            emp.add_order(attribute, "s2", "s1")  # violates ϕ1 (salaries decrease)
        for attribute in dept.schema.attributes:
            dept.add_order(attribute, "t1", "t2")
            dept.add_order(attribute, "t2", "t4")
            dept.add_order(attribute, "t4", "t3")
        assert not company_spec.is_consistent_completion({"Emp": emp, "Dept": dept})

    def test_incomplete_orders_are_not_a_completion(self, company_spec):
        emp = company_spec.instance("Emp").copy()
        dept = company_spec.instance("Dept").copy()
        assert not company_spec.is_consistent_completion({"Emp": emp, "Dept": dept})


class TestStructuralEquality:
    def test_rebuilt_specification_compares_equal(self, company_spec):
        from repro.workloads import company

        rebuilt = company.company_specification()
        assert rebuilt is not company_spec
        assert rebuilt == company_spec

    def test_identity_hashing_is_preserved(self, company_spec):
        # equal-but-distinct specifications stay distinct dict keys: the hash
        # is by identity because specifications are mutable
        from repro.workloads import company

        rebuilt = company.company_specification()
        assert len({id(s) for s in (company_spec, rebuilt)}) == 2
        assert hash(company_spec) != hash(rebuilt) or company_spec is rebuilt

    def test_value_equal_tuples_with_different_tids_differ(self, company_spec):
        from repro.core.tuples import RelationTuple
        from repro.workloads import company

        modified = company.company_specification()
        emp = modified.instance("Emp")
        clone_of_first = emp.tuples()[0]
        emp.add(
            RelationTuple(
                emp.schema, "s_extra",
                {**clone_of_first.values(), emp.schema.eid: clone_of_first.eid},
            )
        )
        assert modified != company_spec

    def test_extra_order_pair_differs(self, company_spec):
        from repro.workloads import company

        modified = company.company_specification()
        emp = modified.instance("Emp")
        attribute = emp.schema.attributes[0]
        block = emp.entity_tids(emp.entities()[0])
        if not emp.precedes(attribute, block[0], block[1]):
            emp.add_order(attribute, block[0], block[1])
        else:
            emp.add_order(attribute, block[1], block[2])
        assert modified != company_spec

    def test_constraint_names_are_presentation_only(self):
        from repro.core.denial import AttrRef, Comparison, CurrencyAtom, DenialConstraint
        from repro.core.schema import RelationSchema

        schema = RelationSchema("R", ("A",))

        def build(name):
            return DenialConstraint(
                schema, ("s", "t"),
                [Comparison(AttrRef("s", "A"), ">", AttrRef("t", "A"))],
                CurrencyAtom("t", "A", "s"), name=name,
            )

        assert build("x") == build("y")
        assert build("") == build("")  # auto-names embed id() but are ignored
