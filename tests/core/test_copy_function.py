"""Unit tests for copy functions (copying condition, ≺-compatibility)."""

import pytest

from repro.core.copy_function import CopyFunction, CopySignature
from repro.exceptions import CopyFunctionError
from repro.workloads import company


@pytest.fixture()
def emp():
    return company.emp_instance()


@pytest.fixture()
def dept():
    return company.dept_instance()


@pytest.fixture()
def rho(emp, dept):
    return company.dept_copy_function()


class TestCopySignature:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(CopyFunctionError):
            CopySignature(company.dept_schema(), ("mgrAddr",), company.emp_schema(), ("address", "FN"))

    def test_empty_signature_rejected(self):
        with pytest.raises(CopyFunctionError):
            CopySignature(company.dept_schema(), (), company.emp_schema(), ())

    def test_unknown_attribute_rejected(self):
        with pytest.raises(Exception):
            CopySignature(company.dept_schema(), ("nope",), company.emp_schema(), ("address",))

    def test_covers_all_target_attributes(self):
        partial = CopySignature(company.dept_schema(), ("mgrAddr",), company.emp_schema(), ("address",))
        assert not partial.covers_all_target_attributes()
        attrs = ("FN", "LN", "address", "salary", "status")
        full = CopySignature(company.emp_schema(), attrs, company.mgr_schema(), attrs)
        assert full.covers_all_target_attributes()


class TestCopyingCondition:
    def test_paper_copy_function_satisfies_condition(self, rho, emp, dept):
        rho.check_copying_condition(dept, emp)  # does not raise
        assert rho.satisfies_copying_condition(dept, emp)

    def test_violation_detected(self, emp, dept):
        bad = CopyFunction(
            "bad",
            CopySignature(company.dept_schema(), ("mgrAddr",), company.emp_schema(), ("address",)),
            target="Dept",
            source="Emp",
            mapping={"t1": "s3"},  # t1's mgrAddr is "2 Small St" but s3's address is "6 Main St"
        )
        assert not bad.satisfies_copying_condition(dept, emp)
        with pytest.raises(CopyFunctionError):
            bad.check_copying_condition(dept, emp)

    def test_call_returns_mapped_source(self, rho):
        assert rho("t1") == "s1"
        assert rho("t9") is None
        assert rho.is_defined_on("t3")
        assert not rho.is_defined_on("t9")


class TestCompatibility:
    def test_compatible_when_no_orders(self, rho, emp, dept):
        # Example 2.2: with empty currency orders ρ is ≺-compatible
        assert rho.is_compatible(dept, emp)

    def test_incompatible_orders_detected(self, rho, emp, dept):
        # Example 2.2 continued: s1 ≺_address s3 in Emp but t3 ≺_mgrAddr t1 in Dept
        emp.add_order("address", "s1", "s3")
        dept.add_order("mgrAddr", "t3", "t1")
        assert not rho.is_compatible(dept, emp)

    def test_compatible_when_target_follows_source(self, rho, emp, dept):
        emp.add_order("address", "s1", "s3")
        dept.add_order("mgrAddr", "t1", "t3")
        dept.add_order("mgrAddr", "t2", "t3")
        assert rho.is_compatible(dept, emp)

    def test_compatibility_implications_cover_same_entity_pairs(self, rho, emp, dept):
        implications = list(rho.compatibility_implications(dept, emp))
        # t1,t2,t3 are all department R&D and map to Mary tuples; t4 maps to Bob
        # (distinct source entity), so only pairs among {t1,t2,t3} appear.
        targets = {(imp[1][1], imp[1][2]) for imp in implications}
        assert ("t1", "t3") in targets
        assert all("t4" not in pair for pair in targets)


class TestExtension:
    def test_extended_with_merges(self, rho):
        extended = rho.extended_with({"t9": "s5"})
        assert extended("t9") == "s5"
        assert extended("t1") == "s1"
        assert len(extended) == len(rho) + 1

    def test_extension_cannot_redefine(self, rho):
        with pytest.raises(CopyFunctionError):
            rho.extended_with({"t1": "s2"})

    def test_extension_with_same_value_is_noop(self, rho):
        assert len(rho.extended_with({"t1": "s1"})) == len(rho)
