"""Unit tests for normal and temporal instances."""

import pytest

from repro.core.instance import NormalInstance, TemporalInstance
from repro.core.schema import RelationSchema
from repro.core.tuples import RelationTuple
from repro.exceptions import PartialOrderError, TupleError


@pytest.fixture()
def schema():
    return RelationSchema("R", ("A", "B"))


def make_tuple(schema, tid, eid, a, b):
    return RelationTuple(schema, tid, {"EID": eid, "A": a, "B": b})


class TestNormalInstance:
    def test_add_and_lookup(self, schema):
        instance = NormalInstance(schema)
        instance.add(make_tuple(schema, "t1", "e", 1, 2))
        assert instance.tuple_by_tid("t1")["A"] == 1
        assert instance.has_tid("t1")
        assert len(instance) == 1

    def test_duplicate_tid_rejected(self, schema):
        instance = NormalInstance(schema, [make_tuple(schema, "t1", "e", 1, 2)])
        with pytest.raises(TupleError):
            instance.add(make_tuple(schema, "t1", "e", 3, 4))

    def test_wrong_schema_rejected(self, schema):
        other = RelationSchema("S", ("A", "B"))
        instance = NormalInstance(schema)
        with pytest.raises(TupleError):
            instance.add(make_tuple(other, "t1", "e", 1, 2))

    def test_unknown_tid_lookup_raises(self, schema):
        with pytest.raises(TupleError):
            NormalInstance(schema).tuple_by_tid("zzz")

    def test_entities_in_first_appearance_order(self, schema):
        instance = NormalInstance(
            schema,
            [
                make_tuple(schema, "t1", "e2", 1, 2),
                make_tuple(schema, "t2", "e1", 1, 2),
                make_tuple(schema, "t3", "e2", 5, 6),
            ],
        )
        assert instance.entities() == ["e2", "e1"]

    def test_entity_block(self, schema):
        instance = NormalInstance(
            schema,
            [make_tuple(schema, "t1", "e1", 1, 2), make_tuple(schema, "t2", "e2", 3, 4)],
        )
        assert [t.tid for t in instance.entity_block("e1")] == ["t1"]

    def test_value_set_equality_ignores_tids(self, schema):
        first = NormalInstance(schema, [make_tuple(schema, "t1", "e", 1, 2)])
        second = NormalInstance(schema, [make_tuple(schema, "x9", "e", 1, 2)])
        assert first == second

    def test_value_set_inequality(self, schema):
        first = NormalInstance(schema, [make_tuple(schema, "t1", "e", 1, 2)])
        second = NormalInstance(schema, [make_tuple(schema, "t1", "e", 1, 3)])
        assert first != second


class TestInstanceIndexes:
    def test_rows_deduplicate_and_preserve_order(self, schema):
        instance = NormalInstance(
            schema,
            [
                make_tuple(schema, "t1", "e1", 1, 2),
                make_tuple(schema, "t2", "e1", 1, 2),  # value-duplicate
                make_tuple(schema, "t3", "e2", 3, 4),
            ],
        )
        assert instance.rows() == (("e1", 1, 2), ("e2", 3, 4))
        assert instance.value_set() == frozenset({("e1", 1, 2), ("e2", 3, 4)})

    def test_index_on_groups_rows_by_column_value(self, schema):
        instance = NormalInstance(
            schema,
            [
                make_tuple(schema, "t1", "e1", 1, 10),
                make_tuple(schema, "t2", "e2", 1, 20),
                make_tuple(schema, "t3", "e3", 2, 30),
            ],
        )
        index = instance.index_on(1)  # column 1 = attribute A
        assert set(index[1]) == {("e1", 1, 10), ("e2", 1, 20)}
        assert index[2] == (("e3", 2, 30),)

    def test_indexes_invalidated_on_add(self, schema):
        instance = NormalInstance(schema, [make_tuple(schema, "t1", "e1", 1, 10)])
        assert instance.index_on(1)[1] == (("e1", 1, 10),)
        instance.add(make_tuple(schema, "t2", "e2", 1, 20))
        assert set(instance.index_on(1)[1]) == {("e1", 1, 10), ("e2", 1, 20)}
        assert instance.rows() == (("e1", 1, 10), ("e2", 1, 20))

    def test_temporal_instance_inherits_indexes(self, two_entity_instance):
        index = two_entity_instance.index_on(0)
        assert {eid for eid in index} == {"e1", "e2"}
        assert len(index["e1"]) == 2


class TestTemporalInstance:
    def test_orders_start_empty(self, two_entity_instance):
        for attribute in two_entity_instance.schema.attributes:
            assert two_entity_instance.order(attribute).pair_count() == 0

    def test_add_order_same_entity(self, two_entity_instance):
        assert two_entity_instance.add_order("A", "t1", "t2")
        assert two_entity_instance.precedes("A", "t1", "t2")

    def test_add_order_cross_entity_rejected(self, two_entity_instance):
        with pytest.raises(PartialOrderError):
            two_entity_instance.add_order("A", "t1", "u1")

    def test_from_rows_with_orders(self, schema):
        instance = TemporalInstance.from_rows(
            schema,
            {"t1": {"EID": "e", "A": 1, "B": 1}, "t2": {"EID": "e", "A": 2, "B": 2}},
            orders={"A": [("t1", "t2")]},
        )
        assert instance.precedes("A", "t1", "t2")

    def test_normal_instance_drops_orders(self, two_entity_instance):
        two_entity_instance.add_order("A", "t1", "t2")
        normal = two_entity_instance.normal_instance()
        assert isinstance(normal, NormalInstance)
        assert not isinstance(normal, TemporalInstance)
        assert len(normal) == len(two_entity_instance)

    def test_copy_is_deep_for_orders(self, two_entity_instance):
        clone = two_entity_instance.copy()
        clone.add_order("A", "t1", "t2")
        assert not two_entity_instance.precedes("A", "t1", "t2")

    def test_contained_in(self, schema):
        base = TemporalInstance.from_rows(
            schema,
            {"t1": {"EID": "e", "A": 1, "B": 1}, "t2": {"EID": "e", "A": 2, "B": 2}},
        )
        extended = base.copy()
        extended.add_order("A", "t1", "t2")
        assert base.contained_in(extended)
        assert not extended.contained_in(base)

    def test_is_complete_detects_missing_comparability(self, two_entity_instance):
        assert not two_entity_instance.is_complete()
        two_entity_instance.add_order("A", "t1", "t2")
        two_entity_instance.add_order("B", "t1", "t2")
        two_entity_instance.add_order("A", "u1", "u2")
        two_entity_instance.add_order("B", "u2", "u1")
        assert two_entity_instance.is_complete()

    def test_is_completion_of(self, schema):
        base = TemporalInstance.from_rows(
            schema,
            {"t1": {"EID": "e", "A": 1, "B": 1}, "t2": {"EID": "e", "A": 2, "B": 2}},
            orders={"A": [("t1", "t2")]},
        )
        completion = base.copy()
        completion.add_order("B", "t2", "t1")
        assert completion.is_completion_of(base)
        # reversing the base pair is not a completion of it
        other = TemporalInstance.from_rows(
            schema,
            {"t1": {"EID": "e", "A": 1, "B": 1}, "t2": {"EID": "e", "A": 2, "B": 2}},
            orders={"A": [("t2", "t1")], "B": [("t1", "t2")]},
        )
        assert not other.is_completion_of(base)

    def test_entity_tids(self, two_entity_instance):
        assert two_entity_instance.entity_tids("e1") == ["t1", "t2"]
