"""Unit tests for completion enumeration and current instances (LST)."""

import pytest

from repro.core.completion import (
    CurrentDatabaseCache,
    completions_of_instance,
    consistent_completions,
    count_consistent_completions,
    first_consistent_completion,
)
from repro.core.current import current_database, current_instance, current_tuple
from repro.core.instance import TemporalInstance
from repro.core.schema import RelationSchema
from repro.core.specification import Specification
from repro.exceptions import PartialOrderError
from repro.workloads import company


@pytest.fixture()
def small_instance():
    schema = RelationSchema("R", ("A", "B"))
    return TemporalInstance.from_rows(
        schema,
        {
            "t1": {"EID": "e", "A": 1, "B": 10},
            "t2": {"EID": "e", "A": 2, "B": 20},
        },
    )


class TestCompletionEnumeration:
    def test_two_tuples_two_attributes_give_four_completions(self, small_instance):
        assert sum(1 for _ in completions_of_instance(small_instance)) == 4

    def test_initial_orders_restrict_completions(self, small_instance):
        small_instance.add_order("A", "t1", "t2")
        completions = list(completions_of_instance(small_instance))
        assert len(completions) == 2
        assert all(c.precedes("A", "t1", "t2") for c in completions)

    def test_completions_are_complete(self, small_instance):
        for completion in completions_of_instance(small_instance):
            assert completion.is_complete()
            assert completion.is_completion_of(small_instance)

    def test_singleton_blocks_have_single_completion(self):
        schema = RelationSchema("R", ("A",))
        instance = TemporalInstance.from_rows(schema, {"t": {"EID": "e", "A": 1}})
        assert sum(1 for _ in completions_of_instance(instance)) == 1

    def test_consistent_completions_respect_constraints(self):
        spec = company.company_specification(with_copy_function=False)
        # restrict to the Dept relation only: 4 tuples, one entity
        dept_only = Specification(
            {"Dept": spec.instance("Dept")}, {"Dept": spec.constraints_for("Dept")}
        )
        for completion in consistent_completions(dept_only, limit=5):
            dept = completion["Dept"]
            for constraint in dept_only.constraints_for("Dept"):
                assert constraint.satisfied_by(dept)

    def test_first_and_count(self, small_instance):
        spec = Specification({"R": small_instance})
        assert first_consistent_completion(spec) is not None
        assert count_consistent_completions(spec) == 4


class TestCurrentInstances:
    def test_current_tuple_mixes_attributes(self, small_instance):
        """Example 2.4 shape: different attributes can take their current value
        from different tuples."""
        small_instance.add_order("A", "t1", "t2")
        small_instance.add_order("B", "t2", "t1")
        [completion] = list(completions_of_instance(small_instance))
        lst = current_tuple(completion, "e")
        assert lst["A"] == 2  # from t2
        assert lst["B"] == 10  # from t1

    def test_current_tuple_requires_known_entity(self, small_instance):
        small_instance.add_order("A", "t1", "t2")
        small_instance.add_order("B", "t1", "t2")
        [completion] = list(completions_of_instance(small_instance))
        with pytest.raises(PartialOrderError):
            current_tuple(completion, "unknown")

    def test_current_instance_has_one_tuple_per_entity(self, two_entity_instance):
        two_entity_instance.add_order("A", "t1", "t2")
        two_entity_instance.add_order("B", "t1", "t2")
        two_entity_instance.add_order("A", "u1", "u2")
        two_entity_instance.add_order("B", "u1", "u2")
        lst = current_instance(two_entity_instance)
        assert len(lst) == 2
        assert {t.eid for t in lst} == {"e1", "e2"}

    def test_example_2_4_current_instances(self, company_spec):
        """LST of the completion D^c_0 is {s3, s4, s5} for Emp and {t3} for Dept."""
        emp = company_spec.instance("Emp").copy()
        dept = company_spec.instance("Dept").copy()
        for attribute in emp.schema.attributes:
            emp.add_order(attribute, "s1", "s2")
            emp.add_order(attribute, "s2", "s3")
        for attribute in dept.schema.attributes:
            dept.add_order(attribute, "t1", "t2")
            dept.add_order(attribute, "t2", "t4")
            dept.add_order(attribute, "t4", "t3")
        database = current_database({"Emp": emp, "Dept": dept})
        emp_values = database["Emp"].value_set()
        assert (company.MARY, "Mary", "Dupont", "6 Main St", 80, "married") in emp_values
        assert (company.BOB, "Bob", "Luth", "8 Cowan St", 80, "married") in emp_values
        assert (company.ROBERT, "Robert", "Luth", "8 Drum St", 55, "married") in emp_values
        dept_values = database["Dept"].value_set()
        assert dept_values == {("R&D", "Mary", "Dupont", "6 Main St", 6000)}


class TestCurrentDatabaseCache:
    def test_value_identical_completions_share_one_instance(self, small_instance):
        """Completions inducing the same current instance decode to the *same*
        NormalInstance object, so query indexes and answer-cache fingerprints
        are shared (the `enumerate` CCQA path)."""
        cache = CurrentDatabaseCache()
        completions = list(completions_of_instance(small_instance))
        assert len(completions) >= 2
        decoded = [cache.current_instance(c) for c in completions]
        by_value = {}
        for completion, instance in zip(completions, decoded):
            again = cache.current_instance(completion)
            assert again is instance
            by_value.setdefault(instance.value_set(), instance)
            assert by_value[instance.value_set()] is instance

    def test_current_database_matches_uncached_decoding(self, small_instance):
        small_instance.add_order("A", "t1", "t2")
        small_instance.add_order("B", "t1", "t2")
        [completion] = list(completions_of_instance(small_instance))
        cache = CurrentDatabaseCache()
        cached = cache.current_database({"R": completion})
        plain = current_database({"R": completion})
        assert cached["R"].value_set() == plain["R"].value_set()

    def test_relation_filter(self, small_instance):
        small_instance.add_order("A", "t1", "t2")
        small_instance.add_order("B", "t1", "t2")
        [completion] = list(completions_of_instance(small_instance))
        cache = CurrentDatabaseCache()
        database = cache.current_database({"R": completion}, relations=[])
        assert database == {}

    def test_cache_cap_clears_wholesale(self, small_instance):
        cache = CurrentDatabaseCache(max_entries=1)
        completions = list(completions_of_instance(small_instance))
        first = cache.current_instance(completions[0])
        second = cache.current_instance(completions[1])
        assert first.value_set() != second.value_set()
        # the cap evicted the first entry; re-decoding builds a fresh object
        assert cache.current_instance(completions[0]) is not first
