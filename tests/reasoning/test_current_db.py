"""Unit tests for the SAT-backed current-database enumerator."""

from repro.core.instance import TemporalInstance
from repro.core.schema import RelationSchema
from repro.core.specification import Specification
from repro.reasoning.current_db import CurrentDatabaseEnumerator


def two_block_specification():
    """One relation, two entities with two tuples each, no orders: every
    attribute choice is free, giving four distinct current databases."""
    schema = RelationSchema("R", ("A",))
    instance = TemporalInstance.from_rows(
        schema,
        {
            "t1": {"EID": "e1", "A": 1},
            "t2": {"EID": "e1", "A": 2},
            "u1": {"EID": "e2", "A": 3},
            "u2": {"EID": "e2", "A": 4},
        },
    )
    return Specification({"R": instance})


def value_sets(databases):
    return {database["R"].value_set() for database in databases}


class TestCurrentDatabaseEnumerator:
    def test_enumerates_all_current_databases(self):
        enumerator = CurrentDatabaseEnumerator(two_block_specification())
        databases = list(enumerator.databases())
        assert len(databases) == 4
        assert value_sets(databases) == {
            frozenset({("e1", a), ("e2", b)}) for a in (1, 2) for b in (3, 4)
        }

    def test_repeated_passes_reuse_the_warm_solver(self):
        enumerator = CurrentDatabaseEnumerator(two_block_specification())
        first = value_sets(enumerator.databases())
        second = value_sets(enumerator.databases())
        assert first == second and len(first) == 4

    def test_interleaved_passes_are_independent(self):
        """Two concurrently consumed generators must not see each other's
        blocking clauses (regression: the first pass was silently truncated)."""
        enumerator = CurrentDatabaseEnumerator(two_block_specification())
        first = enumerator.databases()
        second = enumerator.databases()
        collected_first, collected_second = [], []
        while True:
            a = next(first, None)
            b = next(second, None)
            if a is None and b is None:
                break
            if a is not None:
                collected_first.append(a)
            if b is not None:
                collected_second.append(b)
        assert len(collected_first) == 4
        assert len(collected_second) == 4
        assert value_sets(collected_first) == value_sets(collected_second)

    def test_limit_and_is_empty(self):
        enumerator = CurrentDatabaseEnumerator(two_block_specification())
        assert len(list(enumerator.databases(limit=2))) == 2
        assert not enumerator.is_empty()

    def test_value_identical_models_share_instances(self):
        """Decoded current instances are interned by value: re-enumerating
        yields the same NormalInstance objects, so query indexes are shared."""
        enumerator = CurrentDatabaseEnumerator(two_block_specification())
        first = {db["R"].value_set(): db["R"] for db in enumerator.databases()}
        for database in enumerator.databases():
            assert database["R"] is first[database["R"].value_set()]
