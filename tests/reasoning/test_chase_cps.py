"""Tests for the currency-order chase (Theorem 6.1) and CPS."""

import pytest

from repro.core.copy_function import CopyFunction, CopySignature
from repro.core.instance import TemporalInstance
from repro.core.schema import RelationSchema
from repro.core.specification import Specification
from repro.exceptions import SpecificationError
from repro.reasoning.chase import chase_certain_orders
from repro.reasoning.cps import is_consistent
from repro.workloads import company
from repro.workloads.synthetic import SyntheticConfig, chain_copy_specification, random_specification


def two_source_spec(source_pairs=(), target_pairs=()):
    """Two relations R (source) and S (target); S copies attribute A from R."""
    schema_r = RelationSchema("R", ("A",))
    schema_s = RelationSchema("S", ("A",))
    r = TemporalInstance.from_rows(
        schema_r,
        {"r1": {"EID": "e", "A": 1}, "r2": {"EID": "e", "A": 2}},
        orders={"A": source_pairs},
    )
    s = TemporalInstance.from_rows(
        schema_s,
        {"s1": {"EID": "e", "A": 1}, "s2": {"EID": "e", "A": 2}},
        orders={"A": target_pairs},
    )
    cf = CopyFunction(
        "cf",
        CopySignature(schema_s, ("A",), schema_r, ("A",)),
        target="S",
        source="R",
        mapping={"s1": "r1", "s2": "r2"},
    )
    return Specification({"R": r, "S": s}, copy_functions=[cf])


class TestChase:
    def test_propagates_source_orders_to_target(self):
        spec = two_source_spec(source_pairs=[("r1", "r2")])
        result = chase_certain_orders(spec)
        assert result.consistent
        assert result.certain("S", "A", "s1", "s2")

    def test_propagates_target_orders_back_to_source(self):
        spec = two_source_spec(target_pairs=[("s2", "s1")])
        result = chase_certain_orders(spec)
        assert result.consistent
        assert result.certain("R", "A", "r2", "r1")

    def test_conflicting_orders_detected_as_inconsistent(self):
        spec = two_source_spec(source_pairs=[("r1", "r2")], target_pairs=[("s2", "s1")])
        result = chase_certain_orders(spec)
        assert not result.consistent

    def test_certain_is_vacuous_on_inconsistent_spec(self):
        spec = two_source_spec(source_pairs=[("r1", "r2")], target_pairs=[("s2", "s1")])
        result = chase_certain_orders(spec)
        assert result.certain("R", "A", "r2", "r1")  # vacuously true

    def test_no_copy_functions_keeps_initial_orders(self):
        config = SyntheticConfig(entities=2, tuples_per_entity=3, with_constraints=False, seed=3)
        spec = random_specification(config)
        result = chase_certain_orders(spec)
        assert result.consistent
        for name, instance in spec.instances.items():
            for attribute in instance.schema.attributes:
                assert result.orders[(name, attribute)].contains(instance.order(attribute))

    def test_chain_of_copies_propagates_transitively(self):
        spec = chain_copy_specification(relations=3, entities=2, tuples_per_entity=2, seed=5)
        result = chase_certain_orders(spec)
        assert result.consistent

    def test_chase_matches_enumeration_on_certain_pairs(self):
        """Lemma 6.2: PO∞ equals the intersection of all completed orders."""
        from repro.core.completion import consistent_completions

        spec = two_source_spec(source_pairs=[("r1", "r2")])
        result = chase_certain_orders(spec)
        completions = list(consistent_completions(spec))
        assert completions
        for (name, attribute), order in result.orders.items():
            for lower, upper in order.pairs():
                assert all(c[name].precedes(attribute, lower, upper) for c in completions)
        # and conversely: pairs held in every completion are in PO∞
        sample = completions[0]
        for name, instance in sample.items():
            for attribute in instance.schema.attributes:
                for lower, upper in instance.order(attribute).pairs():
                    if all(c[name].precedes(attribute, lower, upper) for c in completions):
                        assert result.certain(name, attribute, lower, upper)


class TestSharedSourceMapping:
    """Regression: two target tuples copied from the *same* source tuple.

    The chase's back-transfer (target pair ⟹ source pair) is only sound for
    distinct source tuples; with ρ(t1) = ρ(t2) = s it used to derive s ≺ s,
    raise a cycle and wrongly report the specification inconsistent (found by
    the SAT-vs-naive extension-search property harness)."""

    @staticmethod
    def shared_source_spec():
        schema_r = RelationSchema("R", ("A",))
        schema_s = RelationSchema("S", ("A",))
        r = TemporalInstance.from_rows(schema_r, {"r1": {"EID": "e", "A": 1}})
        s = TemporalInstance.from_rows(
            schema_s,
            {"s1": {"EID": "e", "A": 1}, "s2": {"EID": "e", "A": 1}},
            orders={"A": [("s1", "s2")]},  # the copies are ordered in the target
        )
        cf = CopyFunction(
            "cf",
            CopySignature(schema_s, ("A",), schema_r, ("A",)),
            target="S",
            source="R",
            mapping={"s1": "r1", "s2": "r1"},
        )
        return Specification({"R": r, "S": s}, copy_functions=[cf])

    def test_chase_reports_consistent(self):
        assert chase_certain_orders(self.shared_source_spec()).consistent

    def test_all_cps_methods_agree(self):
        spec = self.shared_source_spec()
        assert is_consistent(spec, method="chase")
        assert is_consistent(spec, method="sat")
        assert is_consistent(spec, method="enumerate")

    def test_compatibility_implications_skip_identical_sources(self):
        spec = self.shared_source_spec()
        [cf] = spec.copy_functions
        implications = list(
            cf.compatibility_implications(spec.instance("S"), spec.instance("R"))
        )
        assert implications == []


class TestCPS:
    def test_company_specification_is_consistent(self, company_spec):
        assert is_consistent(company_spec)
        assert is_consistent(company_spec, method="sat")

    def test_manager_specification_is_consistent(self, manager_spec):
        assert is_consistent(manager_spec)

    def test_methods_agree_without_constraints(self):
        for seed in range(4):
            spec = chain_copy_specification(relations=2, entities=2, tuples_per_entity=2, seed=seed)
            assert is_consistent(spec, method="chase") == is_consistent(spec, method="sat")

    def test_sat_agrees_with_enumeration_on_small_specs(self):
        for seed in range(3):
            config = SyntheticConfig(
                entities=1, tuples_per_entity=3, attributes=2, with_constraints=True,
                order_density=0.5, seed=seed,
            )
            spec = random_specification(config)
            assert is_consistent(spec, method="sat") == is_consistent(spec, method="enumerate")

    def test_chase_method_requires_no_constraints(self, company_spec):
        with pytest.raises(SpecificationError):
            is_consistent(company_spec, method="chase")

    def test_unknown_method_rejected(self, company_spec):
        with pytest.raises(SpecificationError):
            is_consistent(company_spec, method="nope")

    def test_inconsistent_example_2_3_scenario(self):
        """The ρ1 scenario of Example 2.3 has no consistent completion."""
        spec = company.company_specification()
        source_schema = RelationSchema("Src", ("budget",), eid="dname")
        source = TemporalInstance.from_rows(
            source_schema,
            {"x1": {"dname": "R&D", "budget": 6500}, "x3": {"dname": "R&D", "budget": 6000}},
            orders={"budget": [("x3", "x1")]},
        )
        spec.instances["Src"] = source
        spec.constraints.setdefault("Src", [])
        spec.add_copy_function(
            CopyFunction(
                "rho1",
                CopySignature(company.dept_schema(), ("budget",), source_schema, ("budget",)),
                target="Dept",
                source="Src",
                mapping={"t1": "x1", "t3": "x3"},
            )
        )
        assert not is_consistent(spec)

    def test_contradictory_initial_orders_are_inconsistent(self):
        schema = RelationSchema("R", ("A",))
        instance = TemporalInstance.from_rows(
            schema, {"t1": {"EID": "e", "A": 1}, "t2": {"EID": "e", "A": 2}}
        )
        from repro.core.denial import AttrRef, Comparison, CurrencyAtom, DenialConstraint

        # A larger and A smaller must both be more current: impossible
        up = DenialConstraint(
            schema, ("s", "t"),
            [Comparison(AttrRef("s", "A"), ">", AttrRef("t", "A"))],
            CurrencyAtom("t", "A", "s"), name="up",
        )
        down = DenialConstraint(
            schema, ("s", "t"),
            [Comparison(AttrRef("s", "A"), "<", AttrRef("t", "A"))],
            CurrencyAtom("t", "A", "s"), name="down",
        )
        spec = Specification({"R": instance}, {"R": [up, down]})
        assert not is_consistent(spec, method="sat")
        assert not is_consistent(spec, method="enumerate")
