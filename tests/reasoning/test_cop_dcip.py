"""Tests for COP (certain ordering) and DCIP (deterministic current instance)."""

import pytest

from repro.core.instance import TemporalInstance
from repro.core.schema import RelationSchema
from repro.core.specification import Specification
from repro.exceptions import SpecificationError
from repro.reasoning.cop import certain_ordering
from repro.reasoning.dcip import is_deterministic, realizable_maxima
from repro.workloads import company
from repro.workloads.synthetic import SyntheticConfig, random_specification


class TestCOP:
    def test_example_3_2_salary_order_is_certain(self, company_spec):
        assert certain_ordering(company_spec, "Emp", {"salary": [("s1", "s3")]})

    def test_example_3_2_mgrfn_order_is_not_certain(self, company_spec):
        assert not certain_ordering(company_spec, "Dept", {"mgrFN": [("t3", "t4")]})

    def test_derived_address_order_is_certain(self, company_spec):
        # ϕ1 + ϕ3 force s2 ≺_address s3 as well
        assert certain_ordering(company_spec, "Emp", {"address": [("s2", "s3"), ("s1", "s3")]})

    def test_copied_order_is_certain_in_dept(self, company_spec):
        # ≺-compatibility imports s1 ≺_address s3 into Dept as t1 ≺_mgrAddr t3
        assert certain_ordering(company_spec, "Dept", {"mgrAddr": [("t1", "t3")]})
        # and ϕ4 lifts it to budget
        assert certain_ordering(company_spec, "Dept", {"budget": [("t1", "t3"), ("t2", "t3")]})

    def test_empty_order_is_trivially_certain(self, company_spec):
        assert certain_ordering(company_spec, "Emp", {})

    def test_order_as_temporal_instance(self, company_spec):
        order = TemporalInstance(company.emp_schema(), company_spec.instance("Emp").tuples())
        order.add_order("salary", "s1", "s3")
        assert certain_ordering(company_spec, "Emp", order)

    def test_cross_entity_order_not_certain_when_consistent(self, company_spec):
        assert not certain_ordering(company_spec, "Emp", {"salary": [("s4", "s5")]})

    def test_vacuous_truth_on_inconsistent_specification(self):
        from repro.core.denial import AttrRef, Comparison, CurrencyAtom, DenialConstraint

        schema = RelationSchema("R", ("A",))
        instance = TemporalInstance.from_rows(
            schema, {"t1": {"EID": "e", "A": 1}, "t2": {"EID": "e", "A": 2}}
        )
        up = DenialConstraint(
            schema, ("s", "t"),
            [Comparison(AttrRef("s", "A"), ">", AttrRef("t", "A"))],
            CurrencyAtom("t", "A", "s"), name="up",
        )
        down = DenialConstraint(
            schema, ("s", "t"),
            [Comparison(AttrRef("s", "A"), "<", AttrRef("t", "A"))],
            CurrencyAtom("t", "A", "s"), name="down",
        )
        spec = Specification({"R": instance}, {"R": [up, down]})
        assert certain_ordering(spec, "R", {"A": [("t1", "t2")]})
        assert certain_ordering(spec, "R", {"A": [("t2", "t1")]})

    def test_chase_and_sat_methods_agree_without_constraints(self):
        config = SyntheticConfig(entities=2, tuples_per_entity=3, with_constraints=False, seed=11,
                                 order_density=0.4)
        spec = random_specification(config)
        name = spec.instance_names()[0]
        instance = spec.instance(name)
        # probe every same-entity pair in both directions
        for eid in instance.entities():
            block = instance.entity_tids(eid)
            for lower in block:
                for upper in block:
                    if lower == upper:
                        continue
                    probe = {"a0": [(lower, upper)]}
                    assert certain_ordering(spec, name, probe, method="chase") == certain_ordering(
                        spec, name, probe, method="sat"
                    )

    def test_chase_method_requires_no_constraints(self, company_spec):
        with pytest.raises(SpecificationError):
            certain_ordering(company_spec, "Emp", {"salary": [("s1", "s3")]}, method="chase")


class TestDCIP:
    def test_example_3_3_emp_is_deterministic(self, company_spec):
        assert is_deterministic(company_spec, "Emp")

    def test_dept_is_not_deterministic(self, company_spec):
        # mgrFN of R&D can currently be either "Mary" (t3 last) or "Ed" (t4 last)
        assert not is_deterministic(company_spec, "Dept")

    def test_literal_constraints_leave_status_uncertain(self, company_spec_literal):
        """Without the status-transition semantics of Example 1.1(2)(a) the
        status attribute of Mary is not determined, so Emp is not deterministic."""
        assert not is_deterministic(company_spec_literal, "Emp")

    def test_whole_specification_determinism(self, company_spec):
        assert not is_deterministic(company_spec)  # Dept spoils it

    def test_realizable_maxima_for_salary(self, company_spec):
        maxima = realizable_maxima(company_spec, "Emp", company.MARY, "salary")
        assert maxima == ["s3"]

    def test_realizable_maxima_for_ln(self, company_spec):
        maxima = set(realizable_maxima(company_spec, "Emp", company.MARY, "LN"))
        assert maxima == {"s2", "s3"}  # both carry "Dupont"

    def test_realizable_maxima_for_budget(self, company_spec):
        maxima = set(realizable_maxima(company_spec, "Dept", "R&D", "budget"))
        assert maxima == {"t3", "t4"}  # both 6000 — hence Q4 is certain

    def test_singleton_blocks_are_deterministic(self):
        config = SyntheticConfig(entities=3, tuples_per_entity=1, with_constraints=False, seed=2)
        spec = random_specification(config)
        assert is_deterministic(spec)

    def test_unordered_distinct_values_are_not_deterministic(self):
        schema = RelationSchema("R", ("A",))
        instance = TemporalInstance.from_rows(
            schema, {"t1": {"EID": "e", "A": 1}, "t2": {"EID": "e", "A": 2}}
        )
        spec = Specification({"R": instance})
        assert not is_deterministic(spec)

    def test_totally_ordered_block_is_deterministic(self):
        schema = RelationSchema("R", ("A",))
        instance = TemporalInstance.from_rows(
            schema,
            {"t1": {"EID": "e", "A": 1}, "t2": {"EID": "e", "A": 2}},
            orders={"A": [("t1", "t2")]},
        )
        spec = Specification({"R": instance})
        assert is_deterministic(spec)
        assert is_deterministic(spec, method="chase")

    def test_same_values_make_order_irrelevant(self):
        schema = RelationSchema("R", ("A",))
        instance = TemporalInstance.from_rows(
            schema, {"t1": {"EID": "e", "A": 7}, "t2": {"EID": "e", "A": 7}}
        )
        spec = Specification({"R": instance})
        assert is_deterministic(spec)

    def test_chase_and_sat_agree_without_constraints(self):
        for seed in range(4):
            config = SyntheticConfig(
                entities=2, tuples_per_entity=2, attributes=2,
                with_constraints=False, order_density=0.5, seed=seed,
            )
            spec = random_specification(config)
            assert is_deterministic(spec, method="chase") == is_deterministic(spec, method="sat")
