"""Tests for CCQA — certain current query answering."""

import pytest

from repro.core.instance import TemporalInstance
from repro.core.schema import RelationSchema
from repro.core.specification import Specification
from repro.exceptions import InconsistentSpecificationError, QueryError, SpecificationError
from repro.query.ast import SPQuery
from repro.query.builders import atom, conjunctive_query, variables
from repro.reasoning.ccqa import (
    certain_current_answers,
    is_certain_answer,
    sp_certain_answers,
)
from repro.workloads import company
from repro.workloads.synthetic import SyntheticConfig, random_specification, random_sp_query


class TestPaperQueries:
    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4"])
    def test_example_1_1_certain_answers(self, company_spec, paper_queries, name):
        answers = certain_current_answers(paper_queries[name], company_spec)
        assert answers == company.EXPECTED_ANSWERS[name]

    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4"])
    def test_candidates_and_enumeration_agree_on_company(self, company_spec, paper_queries, name):
        by_candidates = certain_current_answers(paper_queries[name], company_spec, method="candidates")
        by_enumeration = certain_current_answers(paper_queries[name], company_spec, method="enumerate")
        assert by_candidates == by_enumeration

    def test_is_certain_answer(self, company_spec, paper_queries):
        assert is_certain_answer(paper_queries["Q1"], (80,), company_spec)
        assert not is_certain_answer(paper_queries["Q1"], (50,), company_spec)

    def test_literal_constraints_still_answer_q1_q4(self, company_spec_literal, paper_queries):
        """The queries of Example 1.1 need only ϕ1–ϕ4."""
        for name in ("Q1", "Q2", "Q3", "Q4"):
            answers = certain_current_answers(paper_queries[name], company_spec_literal)
            assert answers == company.EXPECTED_ANSWERS[name]


class TestSPAlgorithm:
    def test_sp_requires_no_denial_constraints(self, company_spec, paper_queries):
        with pytest.raises(SpecificationError):
            sp_certain_answers(paper_queries["Q1"], company_spec)

    def test_sp_requires_sp_query(self):
        config = SyntheticConfig(with_constraints=False, seed=1)
        spec = random_specification(config)
        x, y = variables("x", "y")
        cq = conjunctive_query((x,), [atom("R0", x, y, y, y)])
        with pytest.raises(QueryError):
            sp_certain_answers(cq, spec)

    def test_missing_chase_order_entry_raises_specification_error(self, monkeypatch):
        """Regression: a chase result lacking a (relation, attribute) entry
        must surface as a clear SpecificationError, not a bare KeyError."""
        from repro.reasoning import sp
        from repro.reasoning.chase import ChaseResult

        config = SyntheticConfig(with_constraints=False, seed=3)
        spec = random_specification(config)
        query = random_sp_query(spec, seed=3)
        monkeypatch.setattr(
            sp,
            "chase_certain_orders",
            lambda specification: ChaseResult(consistent=True, orders={}, iterations=0),
        )
        with pytest.raises(SpecificationError, match="certain-order entry"):
            sp_certain_answers(query, spec)

    def test_sp_agrees_with_enumeration(self):
        for seed in range(5):
            config = SyntheticConfig(
                entities=2, tuples_per_entity=2, attributes=2,
                with_constraints=False, order_density=0.5, seed=seed,
            )
            spec = random_specification(config)
            query = random_sp_query(spec, seed=seed)
            fast = certain_current_answers(query, spec, method="sp")
            slow = certain_current_answers(query, spec, method="enumerate")
            assert fast == slow, f"seed {seed}: {fast} != {slow}"

    def test_sp_agrees_with_candidates_with_copy_functions(self):
        from repro.workloads.synthetic import chain_copy_specification

        for seed in range(4):
            spec = chain_copy_specification(
                relations=2, entities=2, tuples_per_entity=2, order_density=0.5, seed=seed
            )
            query = random_sp_query(spec, relation="R1", seed=seed)
            fast = certain_current_answers(query, spec, method="sp")
            slow = certain_current_answers(query, spec, method="candidates")
            assert fast == slow, f"seed {seed}: {fast} != {slow}"

    def test_unknown_value_blocks_answers(self):
        """An entity whose projected attribute has several possible current
        values contributes nothing (Proposition 6.3)."""
        schema = RelationSchema("R", ("A", "B"))
        instance = TemporalInstance.from_rows(
            schema,
            {
                "t1": {"EID": "e", "A": 1, "B": 5},
                "t2": {"EID": "e", "A": 2, "B": 5},
            },
        )
        spec = Specification({"R": instance})
        ambiguous = SPQuery("R", schema, ["A"])
        assert certain_current_answers(ambiguous, spec) == frozenset()
        stable = SPQuery("R", schema, ["B"])
        assert certain_current_answers(stable, spec) == frozenset({(5,)})


class TestGeneralBehaviour:
    def test_inconsistent_specification_raises_for_answer_sets(self):
        from repro.core.denial import AttrRef, Comparison, CurrencyAtom, DenialConstraint

        schema = RelationSchema("R", ("A",))
        instance = TemporalInstance.from_rows(
            schema, {"t1": {"EID": "e", "A": 1}, "t2": {"EID": "e", "A": 2}}
        )
        up = DenialConstraint(
            schema, ("s", "t"),
            [Comparison(AttrRef("s", "A"), ">", AttrRef("t", "A"))],
            CurrencyAtom("t", "A", "s"), name="up",
        )
        down = DenialConstraint(
            schema, ("s", "t"),
            [Comparison(AttrRef("s", "A"), "<", AttrRef("t", "A"))],
            CurrencyAtom("t", "A", "s"), name="down",
        )
        spec = Specification({"R": instance}, {"R": [up, down]})
        query = SPQuery("R", schema, ["A"])
        with pytest.raises(InconsistentSpecificationError):
            certain_current_answers(query, spec)
        # the decision variant is vacuously true
        assert is_certain_answer(query, (1,), spec)
        assert is_certain_answer(query, (99,), spec)

    def test_join_query_across_relations(self, company_spec):
        """A CQ joining Emp and Dept: the current manager's salary."""
        salary, fn = variables("salary", "fn")
        query = conjunctive_query(
            (fn, salary),
            [
                atom("Dept", "R&D", fn, variables("ln")[0], variables("addr")[0], variables("b")[0]),
                atom("Emp", variables("e")[0], fn, variables("ln2")[0], variables("addr2")[0],
                     salary, variables("st")[0]),
            ],
            name="manager_salary",
        )
        answers = certain_current_answers(query, company_spec, method="candidates")
        # the current manager FN is not certain (Mary or Ed), so no join result is certain
        assert answers == frozenset()

    def test_methods_agree_on_small_constrained_specs(self):
        for seed in range(3):
            config = SyntheticConfig(
                entities=1, tuples_per_entity=3, attributes=2,
                with_constraints=True, order_density=0.3, seed=seed,
            )
            spec = random_specification(config)
            from repro.reasoning.cps import is_consistent

            if not is_consistent(spec):
                continue
            query = random_sp_query(spec, seed=seed)
            fast = certain_current_answers(query, spec, method="candidates")
            slow = certain_current_answers(query, spec, method="enumerate")
            assert fast == slow

    def test_unknown_method_rejected(self, company_spec, paper_queries):
        with pytest.raises(SpecificationError):
            certain_current_answers(paper_queries["Q1"], company_spec, method="zzz")
